package faultinject

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("reset=0.02,partial=0.01,error=0.05,latency=2ms@0.1,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ResetProb != 0.02 || cfg.PartialProb != 0.01 || cfg.ErrorProb != 0.05 {
		t.Fatalf("probabilities wrong: %+v", cfg)
	}
	if cfg.Latency != 2*time.Millisecond || cfg.LatencyProb != 0.1 || cfg.Seed != 7 {
		t.Fatalf("latency/seed wrong: %+v", cfg)
	}

	if cfg, err := ParseSpec(""); err != nil || cfg.enabled() {
		t.Fatalf("empty spec: cfg=%+v err=%v", cfg, err)
	}
	if cfg, err := ParseSpec("latency=3ms@1"); err != nil || cfg.Latency != 3*time.Millisecond {
		t.Fatalf("latency-only spec: cfg=%+v err=%v", cfg, err)
	}
	for _, bad := range []string{"reset=2", "reset=x", "latency=5ms", "latency=x@0.5", "bogus=1", "reset"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) should fail", bad)
		}
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Enabled() {
		t.Fatal("nil injector reports enabled")
	}
	if in.String() != "off" {
		t.Fatalf("nil String = %q", in.String())
	}
	if in.Counters() != nil {
		t.Fatal("nil Counters should be nil")
	}
	if New(Config{}) != nil {
		t.Fatal("New with zero config should return nil")
	}
	rt := in.WrapTransport(nil)
	if rt != http.DefaultTransport {
		t.Fatal("nil WrapTransport(nil) should be the default transport")
	}
}

// TestListenerResets pins the connection-doom fault: with ResetProb=1
// every accepted connection dies mid-stream, and the client sees it.
func TestListenerResets(t *testing.T) {
	in := New(Config{ResetProb: 1, Seed: 42})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wrapped := in.WrapListener(ln)
	defer wrapped.Close()

	// Echo server over the doomed listener.
	go func() {
		for {
			c, err := wrapped.Accept()
			if err != nil {
				return
			}
			go io.Copy(c, c)
		}
	}()

	// Pump data until the injected reset shows up on either side.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1024)
	var failed bool
	for i := 0; i < 1024; i++ {
		if _, err := conn.Write(buf); err != nil {
			failed = true
			break
		}
		if _, err := conn.Read(buf); err != nil {
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("doomed connection survived 1 MiB of echo traffic")
	}
	if in.Counters()["resets"] < 1 {
		t.Fatalf("reset counter = %d, want ≥1", in.Counters()["resets"])
	}
}

// TestTransportErrors pins the proxy-path fault: with ErrorProb=1 every
// round trip fails with a temporary injected error.
func TestTransportErrors(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer backend.Close()

	in := New(Config{ErrorProb: 1, Seed: 1})
	client := &http.Client{Transport: in.WrapTransport(nil)}
	_, err := client.Get(backend.URL)
	if err == nil {
		t.Fatal("ErrorProb=1 round trip should fail")
	}
	var inj *errInjected
	if !errors.As(err, &inj) {
		t.Fatalf("error %v is not the injected kind", err)
	}
	if !inj.Temporary() {
		t.Fatal("injected transport error should be Temporary")
	}
	if in.Counters()["errors"] != 1 {
		t.Fatalf("error counter = %d, want 1", in.Counters()["errors"])
	}
}

// TestTransportLatency pins the delay fault: LatencyProb=1 adds Latency
// to every round trip.
func TestTransportLatency(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer backend.Close()

	in := New(Config{LatencyProb: 1, Latency: 30 * time.Millisecond, Seed: 1})
	client := &http.Client{Transport: in.WrapTransport(nil)}
	start := time.Now()
	resp, err := client.Get(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("round trip took %v, want ≥30ms of injected latency", elapsed)
	}
	if in.Counters()["delays"] < 1 {
		t.Fatal("delay counter not incremented")
	}
}
