// Package faultinject is the chaos layer of the fault-tolerant session
// plane: deterministic, seeded injection of the failures the service
// claims to survive — connection resets, added latency, partial response
// writes, and transport-level errors — at the two choke points every byte
// of service traffic crosses: the server's accept loop (WrapListener) and
// the router's proxy transport (WrapTransport).
//
// The package exists so the chaos e2e harness proves fault tolerance
// against the real binary rather than against mocks: `aerodromed
// -chaos "reset=0.02,latency=2ms@0.1"` makes every accepted connection a
// coin-flip away from dying mid-stream, and the differential harness then
// asserts that keyed sessions still finish with verdicts byte-identical
// to sequential checking. Probabilities are low and the generator is
// seeded, so a failing run reproduces.
//
// An Injector is nil-safe: a nil *Injector wraps nothing and injects
// nothing, so callers thread it unconditionally.
package faultinject

import (
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config selects which faults to inject and how often. The zero value
// injects nothing.
type Config struct {
	// Seed makes the injection sequence reproducible; 0 selects 1.
	Seed int64
	// ResetProb is the probability that an accepted connection is doomed:
	// after a random number of bytes (read or written), it is closed hard,
	// so the peer sees a mid-stream connection reset.
	ResetProb float64
	// PartialProb is the probability that one Write delivers only a prefix
	// before the connection is closed — a partially-written response.
	PartialProb float64
	// ErrorProb is the probability that a proxied round trip fails with a
	// synthetic transport error before reaching the backend.
	ErrorProb float64
	// LatencyProb is the probability that one conn Read or one round trip
	// is delayed by Latency.
	LatencyProb float64
	// Latency is the injected delay (default 5ms when LatencyProb > 0).
	Latency time.Duration
}

// enabled reports whether any fault has a nonzero probability.
func (c Config) enabled() bool {
	return c.ResetProb > 0 || c.PartialProb > 0 || c.ErrorProb > 0 || c.LatencyProb > 0
}

// ParseSpec parses the -chaos flag / AERODROME_CHAOS syntax: a
// comma-separated list of fault=probability terms, e.g.
//
//	reset=0.02,partial=0.01,error=0.05,latency=2ms@0.1,seed=7
//
// latency takes duration@probability; seed takes an integer. An empty
// spec is the zero Config (nothing injected).
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, nil
	}
	for _, term := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(term), "=")
		if !ok {
			return cfg, fmt.Errorf("faultinject: bad term %q (want fault=value)", term)
		}
		switch k {
		case "reset", "partial", "error":
			p, err := strconv.ParseFloat(v, 64)
			if err != nil || p < 0 || p > 1 {
				return cfg, fmt.Errorf("faultinject: %s wants a probability in [0,1], got %q", k, v)
			}
			switch k {
			case "reset":
				cfg.ResetProb = p
			case "partial":
				cfg.PartialProb = p
			case "error":
				cfg.ErrorProb = p
			}
		case "latency":
			d, p, ok := strings.Cut(v, "@")
			if !ok {
				return cfg, fmt.Errorf("faultinject: latency wants duration@probability, got %q", v)
			}
			dur, err := time.ParseDuration(d)
			if err != nil || dur < 0 {
				return cfg, fmt.Errorf("faultinject: bad latency duration %q", d)
			}
			prob, err := strconv.ParseFloat(p, 64)
			if err != nil || prob < 0 || prob > 1 {
				return cfg, fmt.Errorf("faultinject: bad latency probability %q", p)
			}
			cfg.Latency, cfg.LatencyProb = dur, prob
		case "seed":
			s, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("faultinject: bad seed %q", v)
			}
			cfg.Seed = s
		default:
			return cfg, fmt.Errorf("faultinject: unknown fault %q (want reset, partial, error, latency, seed)", k)
		}
	}
	if cfg.LatencyProb > 0 && cfg.Latency == 0 {
		cfg.Latency = 5 * time.Millisecond
	}
	return cfg, nil
}

// Injector injects the configured faults. Create with New; nil is valid
// and injects nothing.
type Injector struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand

	resets   atomic.Int64
	partials atomic.Int64
	errors   atomic.Int64
	delays   atomic.Int64
}

// New returns an Injector for cfg, or nil when cfg injects nothing — so
// the caller's nil check doubles as the enabled check.
func New(cfg Config) *Injector {
	if !cfg.enabled() {
		return nil
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Enabled reports whether this injector injects anything.
func (in *Injector) Enabled() bool { return in != nil }

// String summarizes the active faults for the daemon's startup banner.
func (in *Injector) String() string {
	if in == nil {
		return "off"
	}
	var parts []string
	if in.cfg.ResetProb > 0 {
		parts = append(parts, fmt.Sprintf("reset=%g", in.cfg.ResetProb))
	}
	if in.cfg.PartialProb > 0 {
		parts = append(parts, fmt.Sprintf("partial=%g", in.cfg.PartialProb))
	}
	if in.cfg.ErrorProb > 0 {
		parts = append(parts, fmt.Sprintf("error=%g", in.cfg.ErrorProb))
	}
	if in.cfg.LatencyProb > 0 {
		parts = append(parts, fmt.Sprintf("latency=%s@%g", in.cfg.Latency, in.cfg.LatencyProb))
	}
	return strings.Join(parts, ",")
}

// Counters snapshots how many of each fault fired, for logs and tests.
func (in *Injector) Counters() map[string]int64 {
	if in == nil {
		return nil
	}
	return map[string]int64{
		"resets":   in.resets.Load(),
		"partials": in.partials.Load(),
		"errors":   in.errors.Load(),
		"delays":   in.delays.Load(),
	}
}

// roll returns true with probability p, under the injector's seeded rng.
func (in *Injector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	in.mu.Lock()
	v := in.rng.Float64()
	in.mu.Unlock()
	return v < p
}

// intn returns a seeded random int in [0, n).
func (in *Injector) intn(n int) int {
	in.mu.Lock()
	v := in.rng.Intn(n)
	in.mu.Unlock()
	return v
}

// maybeDelay sleeps Latency with probability LatencyProb.
func (in *Injector) maybeDelay() {
	if in.roll(in.cfg.LatencyProb) {
		in.delays.Add(1)
		time.Sleep(in.cfg.Latency)
	}
}

// errInjected is the synthetic failure injected faults surface as.
type errInjected struct{ kind string }

func (e *errInjected) Error() string { return "faultinject: injected " + e.kind }

// Timeout and Temporary mark the error as transient, like the real
// network failures it stands in for.
func (e *errInjected) Timeout() bool   { return false }
func (e *errInjected) Temporary() bool { return true }

// WrapListener wraps ln so accepted connections carry the configured
// connection-level faults. A nil injector returns ln unchanged.
func (in *Injector) WrapListener(ln net.Listener) net.Listener {
	if in == nil {
		return ln
	}
	return &faultListener{Listener: ln, in: in}
}

type faultListener struct {
	net.Listener
	in *Injector
}

func (l *faultListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return c, err
	}
	fc := &faultConn{Conn: c, in: l.in, doomAfter: -1}
	if l.in.roll(l.in.cfg.ResetProb) {
		// Doomed: die after a random number of transferred bytes, so the
		// reset lands anywhere in the request/response cycle — including
		// mid-chunk and mid-response.
		fc.doomAfter = int64(1 + l.in.intn(16<<10))
	}
	return fc, nil
}

// faultConn injects latency, mid-stream resets and partial writes on one
// accepted connection.
type faultConn struct {
	net.Conn
	in          *Injector
	mu          sync.Mutex
	transferred int64
	doomAfter   int64 // -1: not doomed
	dead        bool
}

// account moves the transferred-byte counter and reports whether the doom
// threshold was crossed by this operation (and how many bytes of it are
// still before the threshold).
func (c *faultConn) account(n int) (doomed bool, allowed int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return true, 0
	}
	before := c.transferred
	c.transferred += int64(n)
	if c.doomAfter >= 0 && c.transferred >= c.doomAfter {
		c.dead = true
		allowed = int(c.doomAfter - before)
		if allowed < 0 {
			allowed = 0
		}
		return true, allowed
	}
	return false, n
}

func (c *faultConn) Read(p []byte) (int, error) {
	c.in.maybeDelay()
	c.mu.Lock()
	dead := c.dead
	c.mu.Unlock()
	if dead {
		return 0, &errInjected{kind: "connection reset"}
	}
	n, err := c.Conn.Read(p)
	if doomed, allowed := c.account(n); doomed {
		c.in.resets.Add(1)
		c.Conn.Close()
		return allowed, &errInjected{kind: "connection reset"}
	}
	return n, err
}

func (c *faultConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	dead := c.dead
	c.mu.Unlock()
	if dead {
		return 0, &errInjected{kind: "connection reset"}
	}
	if c.in.roll(c.in.cfg.PartialProb) && len(p) > 1 {
		// Deliver a prefix, then kill the conn: the peer sees a truncated
		// response body (or header) followed by a reset.
		c.in.partials.Add(1)
		n, _ := c.Conn.Write(p[:len(p)/2])
		c.mu.Lock()
		c.dead = true
		c.mu.Unlock()
		c.Conn.Close()
		return n, &errInjected{kind: "partial write"}
	}
	n, err := c.Conn.Write(p)
	if doomed, allowed := c.account(n); doomed {
		c.in.resets.Add(1)
		c.Conn.Close()
		if allowed > n {
			allowed = n
		}
		return allowed, &errInjected{kind: "connection reset"}
	}
	return n, err
}

// WrapTransport wraps rt (nil selects http.DefaultTransport) so proxied
// round trips carry the configured error and latency faults. A nil
// injector returns rt (or the default transport) unchanged.
func (in *Injector) WrapTransport(rt http.RoundTripper) http.RoundTripper {
	if rt == nil {
		rt = http.DefaultTransport
	}
	if in == nil {
		return rt
	}
	return &faultTransport{next: rt, in: in}
}

type faultTransport struct {
	next http.RoundTripper
	in   *Injector
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.in.maybeDelay()
	if t.in.roll(t.in.cfg.ErrorProb) {
		t.in.errors.Add(1)
		// Drain-and-close mirrors what a transport does with a request body
		// it failed to deliver.
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, &errInjected{kind: "transport error"}
	}
	return t.next.RoundTrip(req)
}
