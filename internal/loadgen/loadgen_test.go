package loadgen

// Unit tests for the open-loop machinery: schedule determinism and
// shape, histogram quantile accuracy, the open-loop invariant under a
// deliberately slow target (debt accumulates, the arrival clock does
// not stretch), and chunk splitting.

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

func testProfile(seed int64) RateProfile {
	return RateProfile{Tenant: "t", Shape: ShapeConstant, PeakRPS: 200, Seed: seed}
}

func TestScheduleDeterministic(t *testing.T) {
	d := 500 * time.Millisecond
	a := testProfile(7).Schedule(d)
	b := testProfile(7).Schedule(d)
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same profile and seed produced different schedules")
	}
	c := testProfile(8).Schedule(d)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	for i, arr := range a {
		if arr.Seq != i {
			t.Fatalf("arrival %d has seq %d", i, arr.Seq)
		}
		if arr.At < 0 || arr.At >= d {
			t.Fatalf("arrival %d outside the run: %v", i, arr.At)
		}
		if i > 0 && arr.At < a[i-1].At {
			t.Fatalf("schedule not monotone at %d", i)
		}
	}
}

func TestScheduleShapes(t *testing.T) {
	d := 2 * time.Second

	// Constant: the count concentrates around rate*duration (Poisson;
	// 4σ ≈ 4·√400 = 80 around 400).
	n := len(testProfile(1).Schedule(d))
	if n < 320 || n > 480 {
		t.Fatalf("constant 200rps over 2s produced %d arrivals", n)
	}

	// Ramp: the second half must hold most of the arrivals (3/4 in
	// expectation for a 0→peak ramp; ≥2/3 leaves room for Poisson noise
	// while still ruling out anything flat).
	ramp := RateProfile{Shape: ShapeRamp, BaseRPS: 0, PeakRPS: 200, Seed: 2}.Schedule(d)
	var late int
	for _, a := range ramp {
		if a.At > d/2 {
			late++
		}
	}
	if late*3 < len(ramp)*2 {
		t.Fatalf("ramp: %d of %d arrivals in the second half, want ≥ 2/3", late, len(ramp))
	}

	// Square: the high phase must arrive far faster than the low phase.
	sq := RateProfile{Shape: ShapeSquare, BaseRPS: 10, PeakRPS: 400,
		Period: 500 * time.Millisecond, Seed: 3}.Schedule(d)
	var lo, hi int
	for _, a := range sq {
		if (a.At/(250*time.Millisecond))%2 == 0 {
			lo++
		} else {
			hi++
		}
	}
	if hi < 10*lo {
		t.Fatalf("square: %d high-phase vs %d low-phase arrivals, want ≥10×", hi, lo)
	}
}

func TestExpectedArrivalsMatchesSchedule(t *testing.T) {
	p := RateProfile{Shape: ShapeRamp, BaseRPS: 20, PeakRPS: 300, Seed: 9}
	d := 2 * time.Second
	want := p.ExpectedArrivals(d)
	got := float64(len(p.Schedule(d)))
	if got < want*0.8 || got > want*1.2 {
		t.Fatalf("schedule has %v arrivals, expectation %v", got, want)
	}
}

func TestHistQuantiles(t *testing.T) {
	var h Hist
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	for _, tc := range []struct {
		q    float64
		want float64 // ms
	}{{0.50, 500}, {0.99, 990}, {0.999, 999}} {
		got := h.Quantile(tc.q)
		if got < tc.want*0.95 || got > tc.want*1.05 {
			t.Fatalf("q%v = %vms, want %vms ±5%%", tc.q, got, tc.want)
		}
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
}

// TestOpenLoopInvariant pins the property the package exists for: a
// target far slower than the arrival rate turns excess arrivals into
// debt while the dispatcher stays on schedule, instead of silently
// stretching the arrival process the way a closed-loop driver would.
func TestOpenLoopInvariant(t *testing.T) {
	slow := TargetFunc(func(_ int, _ Arrival) Result {
		time.Sleep(100 * time.Millisecond)
		return Result{OK: true, Events: 1}
	})
	sched := testProfile(11).Schedule(400 * time.Millisecond) // ~80 arrivals
	stats := Run(RunnerConfig{Workers: 2, Queue: 2}, sched, slow)

	if stats.Arrivals != int64(len(sched)) {
		t.Fatalf("arrivals %d, schedule %d", stats.Arrivals, len(sched))
	}
	if stats.Debt == 0 {
		t.Fatal("a saturated 2-worker pool produced no omission debt")
	}
	if stats.Dispatched+stats.Debt != stats.Arrivals {
		t.Fatalf("dispatched %d + debt %d ≠ arrivals %d",
			stats.Dispatched, stats.Debt, stats.Arrivals)
	}
	// The dispatcher must not have been dragged off schedule by the slow
	// target: its worst lateness stays within sleep-granularity slack,
	// far under the 100ms a single blocking dispatch would cost.
	if stats.MaxDispatchLag > 50*time.Millisecond {
		t.Fatalf("dispatch lag %v: the arrival clock blocked on the target", stats.MaxDispatchLag)
	}
	if stats.Completed != stats.Dispatched || stats.Events != stats.Completed {
		t.Fatalf("completed %d events %d dispatched %d",
			stats.Completed, stats.Events, stats.Dispatched)
	}
	// Latency is measured from the scheduled time: queued jobs behind a
	// 100ms target must show ≥100ms tails even though each Do "took"
	// only 100ms — the coordinated-omission correction in action.
	if p99 := stats.P99(); p99 < 100 {
		t.Fatalf("p99 %vms under a 100ms target", p99)
	}
}

func TestSplitChunksLineAligned(t *testing.T) {
	data := []byte("a 1\nb 2\nc 3\nd 4\ne 5\n")
	for _, n := range []int{1, 2, 3, 5, 9} {
		chunks := SplitChunks(data, n)
		if got := bytes.Join(chunks, nil); !bytes.Equal(got, data) {
			t.Fatalf("n=%d: chunks do not reassemble the input: %q", n, got)
		}
		for i, c := range chunks {
			if len(c) == 0 || c[len(c)-1] != '\n' {
				t.Fatalf("n=%d: chunk %d not line-aligned: %q", n, i, c)
			}
		}
	}
}
