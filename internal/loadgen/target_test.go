package loadgen

// Honesty tests for the load targets: the /v1/check requests must not
// carry Expect: 100-continue (it stalls every admitted check for the
// transport's ExpectContinueTimeout against servers that never send
// the interim response), a gave-up arrival must not pay a trailing
// backoff sleep after its final attempt, Prime must not sleep past its
// budget, and gave-up arrivals must be visible in Run's latency
// accounting instead of vanishing from the histograms.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// headerRecordingTransport captures every outgoing request's headers
// (and the time its response was handed back) before delegating — the
// client side of the wire, where the Expect header would live before
// the transport's special handling.
type headerRecordingTransport struct {
	mu      sync.Mutex
	headers []http.Header
	lastRT  time.Time
}

func (rt *headerRecordingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rt.mu.Lock()
	rt.headers = append(rt.headers, req.Header.Clone())
	rt.mu.Unlock()
	resp, err := http.DefaultTransport.RoundTrip(req)
	rt.mu.Lock()
	rt.lastRT = time.Now()
	rt.mu.Unlock()
	return resp, err
}

func TestCheckRequestsCarryNoExpectHeader(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"serializable":true,"events":3,"algorithm":"aerodrome-optimized"}`)
	}))
	defer ts.Close()

	rt := &headerRecordingTransport{}
	target := &CheckTarget{
		BaseURL: ts.URL, Data: []byte("t0|begin|0\n"),
		Expect:    Expect{Serializable: true, Events: 3},
		KeyPrefix: "hdr", Client: &http.Client{Transport: rt},
	}
	res := target.Do(0, Arrival{Tenant: "hdr-test"})
	if !res.OK {
		t.Fatalf("check did not complete: %+v", res)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if len(rt.headers) == 0 {
		t.Fatal("no request captured")
	}
	for i, h := range rt.headers {
		if v := h.Get("Expect"); v != "" {
			t.Fatalf("request %d carries Expect: %q — stalls every admitted check for ExpectContinueTimeout", i, v)
		}
	}
}

// TestGaveUpCostsNoTrailingSleep pins the final-attempt fix: against a
// server that always says 429 with a Retry-After worth the full backoff
// cap, exhausting retries must return promptly after the last response
// instead of sleeping one more capped delay with nothing left to retry.
func TestGaveUpCostsNoTrailingSleep(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1") // capped to loadRetryCap (250ms)
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	rt := &headerRecordingTransport{}
	target := &CheckTarget{
		BaseURL: ts.URL, Data: []byte("x"),
		KeyPrefix: "gaveup", Client: &http.Client{Transport: rt},
	}
	res := target.Do(0, Arrival{Tenant: "gaveup-test"})
	done := time.Now()
	if res.OK || res.Hard {
		t.Fatalf("expected gave-up result, got %+v", res)
	}
	if res.Rejections != loadAttempts {
		t.Fatalf("rejections %d, want %d", res.Rejections, loadAttempts)
	}
	rt.mu.Lock()
	tail := done.Sub(rt.lastRT)
	rt.mu.Unlock()
	if tail >= loadRetryCap {
		t.Fatalf("Do slept ~%v after the final attempt (>= the %v cap) — wasted worker-slot time", tail, loadRetryCap)
	}
}

// TestPrimeDoesNotSleepPastBudget pins Prime's version of the same fix:
// when the next backoff would cross the deadline, fail now.
func TestPrimeDoesNotSleepPastBudget(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	budget := 400 * time.Millisecond
	start := time.Now()
	err := Prime(nil, ts.URL, []byte("x"), budget)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("prime against an always-503 server must fail")
	}
	// Attempts land at ~0ms and ~250ms; the next capped backoff would end
	// past the 400ms deadline, so the fixed Prime bails at ~250ms. The old
	// code slept through the deadline and returned at ~500ms.
	if elapsed >= budget {
		t.Fatalf("prime took %v — slept past its %v budget instead of bailing", elapsed, budget)
	}
}

// TestGaveUpVisibleInRunAccounting pins the open-loop accounting: a
// dispatched arrival that exhausts retries must land in the gave-up
// histogram with its end-to-end time, and must not contaminate the
// completion histogram.
func TestGaveUpVisibleInRunAccounting(t *testing.T) {
	const held = 30 * time.Millisecond
	schedule := []Arrival{{At: 0, Tenant: "t"}, {At: time.Millisecond, Tenant: "t"}}
	stats := Run(RunnerConfig{Workers: 2, Queue: 4}, schedule, TargetFunc(func(_ int, _ Arrival) Result {
		time.Sleep(held)
		return Result{Rejections: 3} // exhausted retries: neither OK nor Hard
	}))
	if stats.GaveUp != int64(len(schedule)) {
		t.Fatalf("GaveUp %d, want %d", stats.GaveUp, len(schedule))
	}
	if got := stats.GaveUpHist.Count(); got != stats.GaveUp {
		t.Fatalf("gave-up histogram holds %d observations for %d gave-up arrivals", got, stats.GaveUp)
	}
	if max := stats.GaveUpMax(); max < float64(held.Milliseconds()) {
		t.Fatalf("GaveUpMax %.3fms — lost the time the arrival was actually held (>= %v)", max, held)
	}
	if stats.Hist.Count() != 0 {
		t.Fatalf("completion histogram recorded %d observations from gave-up arrivals", stats.Hist.Count())
	}
	if stats.Completed != 0 || stats.Hard != 0 {
		t.Fatalf("unexpected outcome counts: %+v", stats)
	}
}
