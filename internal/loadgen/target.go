package loadgen

// Targets: how one arrival becomes HTTP traffic. The check target posts
// a whole pre-rendered trace to /v1/check through the shared
// bench.RetryPolicy (so its retry/Retry-After semantics are the
// saturation bench's by construction, with Retry-After honored like a
// well-behaved production client); the session target drives long-lived
// keyed incremental sessions through server.Client, the reference
// implementation of the session-plane retry contract. Both pin the
// remote verdict against a locally computed report — a load run that
// returns wrong answers fast is a failure, not a throughput record.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"aerodrome"
	"aerodrome/internal/bench"
	"aerodrome/internal/server"
)

const (
	// loadBackoff is the flat retry delay; Retry-After stretches it when
	// the server asks, capped so one pathological header cannot wedge an
	// open-loop worker.
	loadBackoff   = 25 * time.Millisecond
	loadRetryCap  = 250 * time.Millisecond
	loadAttempts  = 6
	loadAlgorithm = "optimized"
)

// loadPolicy is the load harness's retry policy, shared with the
// saturation bench via internal/bench so the two cannot drift.
var loadPolicy = bench.RetryPolicy{
	Backoff:         loadBackoff,
	HonorRetryAfter: true,
	RetryAfterCap:   loadRetryCap,
}

// Expect is the locally computed verdict every remote answer is checked
// against.
type Expect struct {
	Serializable bool
	EventIndex   int64
	Check        string
	Events       int64
}

// ExpectFromReport derives the pin from a local reference report.
func ExpectFromReport(rep *aerodrome.Report) Expect {
	e := Expect{Serializable: rep.Serializable, Events: rep.Events}
	if rep.Violation != nil {
		e.EventIndex, e.Check = rep.Violation.EventIndex, rep.Violation.Check
	}
	return e
}

// matches reports whether a remote report agrees with the pin.
func (e Expect) matches(rep *aerodrome.Report) bool {
	if rep.Serializable != e.Serializable || rep.Events != e.Events {
		return false
	}
	if e.Serializable {
		return true
	}
	return rep.Violation != nil &&
		rep.Violation.EventIndex == e.EventIndex && rep.Violation.Check == e.Check
}

// CheckTarget posts one whole trace per arrival.
type CheckTarget struct {
	BaseURL string
	Data    []byte
	Expect  Expect
	// KeyPrefix salts the per-arrival trace routing key, so distinct
	// scenarios cannot collide on a router's session-affinity table.
	KeyPrefix string
	Client    *http.Client
}

func (t *CheckTarget) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

// Do posts the trace, retrying retryable refusals under loadPolicy for
// at most loadAttempts tries. Exhausting retries is GaveUp (expected
// under deliberate overload); a verdict mismatch or non-retryable
// status is Hard.
func (t *CheckTarget) Do(_ int, a Arrival) Result {
	var res Result
	for attempt := 0; attempt < loadAttempts; attempt++ {
		req, err := http.NewRequest(http.MethodPost,
			t.BaseURL+"/v1/check?algo="+loadAlgorithm, bytes.NewReader(t.Data))
		if err != nil {
			res.Hard = true
			return res
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		req.Header.Set(server.DefaultTenantHeader, a.Tenant)
		// A per-arrival key spreads checks across a router's ring; a
		// rejected attempt re-posts under the same key (same trace, same
		// budget bucket) rather than budget-shopping.
		req.Header.Set(server.RouterTraceHeader,
			fmt.Sprintf("%s-%s-%d", t.KeyPrefix, a.Tenant, a.Seq))
		// No Expect: 100-continue here: against a server or transport
		// that never sends the interim response it stalls every admitted
		// check for the transport's ExpectContinueTimeout, silently
		// inflating each load-* latency row.
		resp, out := bench.Attempt(t.client(), req)
		switch out {
		case bench.OutcomeOK:
			var rep aerodrome.Report
			err := json.NewDecoder(resp.Body).Decode(&rep)
			resp.Body.Close()
			if err != nil || !t.Expect.matches(&rep) {
				res.Hard = true
				return res
			}
			res.OK, res.Events = true, rep.Events
			return res
		case bench.OutcomeRetryable:
			res.Rejections++
			delay := loadPolicy.Delay(resp)
			if resp != nil {
				io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
				resp.Body.Close()
			}
			// Backoff buys the *next* attempt room; after the last one
			// there is nothing to buy, and sleeping would hold the worker
			// slot (and stretch the gave-up latency) for nothing.
			if attempt < loadAttempts-1 {
				time.Sleep(delay)
			}
		default:
			resp.Body.Close()
			res.Hard = true
			return res
		}
	}
	return res // retries exhausted: GaveUp
}

// sessionState is one worker's live incremental session.
type sessionState struct {
	sess *server.Session
	next int // next chunk index to feed
	gen  int // session generation, salts the routing key
}

// SessionTarget drives long-lived incremental sessions: each worker
// owns one session and feeds it the next chunk per arrival; when the
// trace is exhausted the session is finalized, its report pinned
// against the local reference, and a fresh session (new routing key)
// opened. Worker affinity is what makes this safe: chunks carry
// strictly increasing sequence numbers per session, which a shared
// session across workers could not guarantee.
type SessionTarget struct {
	BaseURL string
	Chunks  [][]byte
	Expect  Expect
	// KeyPrefix salts per-session routing keys.
	KeyPrefix string
	Client    *http.Client

	states []*sessionState
}

// NewSessionTarget prepares per-worker slots for cfg.Workers workers.
func NewSessionTarget(cfg RunnerConfig, baseURL string, chunks [][]byte, exp Expect, keyPrefix string) *SessionTarget {
	return &SessionTarget{
		BaseURL: baseURL, Chunks: chunks, Expect: exp, KeyPrefix: keyPrefix,
		states: make([]*sessionState, cfg.workers()),
	}
}

func (t *SessionTarget) newClient(worker, gen int) *server.Client {
	return &server.Client{
		BaseURL:    t.BaseURL,
		TraceKey:   fmt.Sprintf("%s-w%d-g%d", t.KeyPrefix, worker, gen),
		HTTPClient: t.Client,
		Timeout:    5 * time.Second,
		RetryBase:  loadBackoff,
		RetryMax:   loadRetryCap,
	}
}

// Do feeds one chunk on the worker's session, opening or finalizing
// sessions at the trace boundaries. Session-plane errors after the
// client's own retries are Hard — unlike one-shot checks, the
// journaled failover plane promises these operations succeed.
func (t *SessionTarget) Do(worker int, a Arrival) Result {
	var res Result
	st := t.states[worker]
	if st == nil {
		c := t.newClient(worker, 0)
		c.Tenant = a.Tenant
		sess, err := c.NewSession(loadAlgorithm)
		if err != nil {
			res.Rejections++
			return res // session slots exhausted: retry on a later arrival
		}
		st = &sessionState{sess: sess}
		t.states[worker] = st
	}
	if _, err := st.sess.FeedContext(context.Background(), t.Chunks[st.next]); err != nil {
		res.Hard = true
		return res
	}
	st.next++
	if st.next < len(t.Chunks) {
		res.OK = true
		return res
	}
	// Trace complete: finalize, pin the verdict, roll to a new session.
	rep, err := st.sess.Close()
	if err != nil || !t.Expect.matches(rep) {
		res.Hard = true
		return res
	}
	res.OK, res.Events = true, rep.Events
	gen := st.gen + 1
	c := t.newClient(worker, gen)
	c.Tenant = a.Tenant
	sess, err := c.NewSession(loadAlgorithm)
	if err != nil {
		t.states[worker] = nil
		res.Rejections++
		return res
	}
	t.states[worker] = &sessionState{sess: sess, gen: gen}
	return res
}

// Close finalizes any sessions still open at end of run; their partial
// traces are discarded (no verdict pin — the trace is incomplete).
func (t *SessionTarget) Close() {
	for i, st := range t.states {
		if st != nil {
			st.sess.Close()
			t.states[i] = nil
		}
	}
}

// Prime verifies connectivity by running one admitted check within
// budget, retrying retryable refusals — fault injection can hit the
// very first request. It returns an error only once the budget is
// spent or a hard status arrives.
func Prime(client *http.Client, baseURL string, data []byte, budget time.Duration) error {
	if client == nil {
		client = http.DefaultClient
	}
	deadline := time.Now().Add(budget)
	var lastErr error
	for time.Now().Before(deadline) {
		req, err := http.NewRequest(http.MethodPost,
			baseURL+"/v1/check?algo="+loadAlgorithm, bytes.NewReader(data))
		if err != nil {
			return err
		}
		resp, out := bench.Attempt(client, req)
		switch out {
		case bench.OutcomeOK:
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return nil
		case bench.OutcomeRetryable:
			if resp != nil {
				lastErr = fmt.Errorf("HTTP %d", resp.StatusCode)
				resp.Body.Close()
			} else {
				lastErr = fmt.Errorf("transport error")
			}
			// A backoff that would cross the deadline buys no further
			// attempt — fail now instead of sleeping past the budget.
			delay := loadPolicy.Delay(resp)
			if !time.Now().Add(delay).Before(deadline) {
				return fmt.Errorf("prime: no admitted check within %v (last: %v)", budget, lastErr)
			}
			time.Sleep(delay)
		default:
			resp.Body.Close()
			return fmt.Errorf("prime: HTTP %d", resp.StatusCode)
		}
	}
	return fmt.Errorf("prime: no admitted check within %v (last: %v)", budget, lastErr)
}

// Failovers scrapes failovers_total from baseURL's /metrics — present
// on routers, zero elsewhere. Errors read as zero: the counter is
// reporting, not control flow.
func Failovers(client *http.Client, baseURL string) int64 {
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var m server.RouterMetricsSnapshot
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&m) != nil {
		return 0
	}
	return m.FailoversTotal
}
