package loadgen

// The scenario zoo and its topologies. Each scenario pairs a rate
// profile (constant, ramp, square-wave burst, long-lived low-rate
// sessions) with a payload drawn from the scenario-shape workload
// patterns, and runs against the same three topologies as the
// saturation bench: one aerodromed, the shard router fronting two, and
// the router under fault injection with a backend killed mid-run. Rows
// land in the shared BENCH json flow as engine "load-<scenario>-<topo>"
// with the latency-quantile and open-loop-accounting columns.

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"aerodrome"
	"aerodrome/internal/bench"
	"aerodrome/internal/faultinject"
	"aerodrome/internal/rapidio"
	"aerodrome/internal/server"
	"aerodrome/internal/workload"
)

// Topology labels of the load rows.
const (
	TopoSingle       = "single"
	TopoRouter2      = "router2"
	TopoRouter2Chaos = "router2-chaos"
	// TopoExternal labels rows measured against a caller-supplied URL
	// (the e2e script's daemons) rather than an in-process topology.
	TopoExternal = "ext"
)

// loadPrimeBudget bounds the pre-run connectivity check.
const loadPrimeBudget = 10 * time.Second

// Scenario is one named load shape: an arrival profile plus the payload
// and harness sizing it drives.
type Scenario struct {
	Name     string
	Profile  RateProfile
	Duration time.Duration
	Runner   RunnerConfig
	// Pattern and Inject pick the payload trace; Events sizes it.
	Pattern workload.Pattern
	Inject  workload.Violation
	Events  int64
	// TenantBudget is the per-backend BytesPerSec granted to every
	// tenant of in-process topologies (0 = effectively unlimited).
	// External topologies use whatever the daemon was booted with.
	TenantBudget int64
	// Sessions switches the payload from one-shot checks to long-lived
	// incremental sessions fed Chunks line-aligned pieces per arrival.
	Sessions bool
	Chunks   int
	// Smoke marks the scenario as e2e-only: MeasureLoadRows skips it,
	// the e2e script drives it via MeasureScenarioAgainst.
	Smoke bool
}

// Scenarios returns the zoo. Every profile is seeded, so schedules —
// and with them the admission pressure each run applies — are
// reproducible across machines.
func Scenarios() []Scenario {
	return []Scenario{
		{
			// Steady state: constant moderate rate, generous budget. The
			// baseline the other rows are read against.
			Name:     "steady",
			Profile:  RateProfile{Tenant: "load-steady", Shape: ShapeConstant, PeakRPS: 120, Seed: 1},
			Duration: 1200 * time.Millisecond,
			Runner:   RunnerConfig{Workers: 16, Queue: 64},
			Pattern:  workload.PatternProducerConsumer, Events: 2000,
		},
		{
			// Ramp: arrival rate grows linearly to past the steady rate,
			// exposing where queueing starts to show in the tail.
			Name:     "ramp",
			Profile:  RateProfile{Tenant: "load-ramp", Shape: ShapeRamp, BaseRPS: 10, PeakRPS: 240, Seed: 2},
			Duration: 1400 * time.Millisecond,
			Runner:   RunnerConfig{Workers: 16, Queue: 64},
			Pattern:  workload.PatternBarrier, Events: 2000,
		},
		{
			// Burst: square-wave overload against a deliberately tight
			// admission budget. The payload carries an injected violation,
			// so every admitted check also pins the violating-verdict path;
			// the 429s this scenario must produce are the quota layer
			// doing its job, and the thrash pattern's fresh-variable churn
			// makes each admitted check adversarial for interning.
			Name:     "burst",
			Profile:  RateProfile{Tenant: "load-burst", Shape: ShapeSquare, BaseRPS: 20, PeakRPS: 400, Period: 600 * time.Millisecond, Seed: 3},
			Duration: 1500 * time.Millisecond,
			Runner:   RunnerConfig{Workers: 16, Queue: 32},
			Pattern:  workload.PatternThrash, Inject: workload.ViolationCross,
			Events: 2000, TenantBudget: 192 << 10,
		},
		{
			// Sessions: low-rate long-lived incremental sessions, each
			// arrival one chunk. Completion latency pins the session plane
			// (create/feed/finalize with idempotent sequencing) under
			// concurrent load, and the finalize verdict is byte-compared
			// to the local reference.
			Name:     "sessions",
			Profile:  RateProfile{Tenant: "load-sessions", Shape: ShapeConstant, PeakRPS: 40, Seed: 4},
			Duration: 1500 * time.Millisecond,
			Runner:   RunnerConfig{Workers: 4, Queue: 32},
			Pattern:  workload.PatternConvoy, Events: 1500,
			Sessions: true, Chunks: 5,
		},
		{
			// Burst-smoke: the CI e2e leg — same square-wave shape at a
			// rate a shared runner sustains, driven against externally
			// booted daemons (MODE=load in scripts/e2e_server.sh).
			Name:     "burst-smoke",
			Profile:  RateProfile{Tenant: "load-smoke", Shape: ShapeSquare, BaseRPS: 5, PeakRPS: 60, Period: 400 * time.Millisecond, Seed: 5},
			Duration: 1200 * time.Millisecond,
			Runner:   RunnerConfig{Workers: 8, Queue: 32},
			Pattern:  workload.PatternProducerConsumer, Events: 1500,
			TenantBudget: 256 << 10,
			Smoke:        true,
		},
	}
}

// ByName returns the named scenario.
func ByName(name string) (Scenario, error) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("loadgen: unknown scenario %q", name)
}

// payloadConfig is the workload config behind a scenario's trace.
func (s Scenario) payloadConfig() workload.Config {
	return workload.Config{
		Name: "load-" + s.Name, Threads: 6, Vars: 64, Locks: 4,
		Events: s.Events, OpsPerTxn: 3, Pattern: s.Pattern,
		Inject: s.Inject, InjectAt: 0.7, Seed: 20260808,
	}
}

// Payload renders the scenario's trace to STD bytes and computes the
// local reference verdict every remote answer is pinned against.
func (s Scenario) Payload() ([]byte, Expect, error) {
	var buf bytes.Buffer
	if _, err := rapidio.WriteSource(&buf, workload.New(s.payloadConfig())); err != nil {
		return nil, Expect{}, fmt.Errorf("loadgen: rendering %s: %w", s.Name, err)
	}
	data := buf.Bytes()
	rep, err := aerodrome.CheckSTD(bytes.NewReader(data), aerodrome.Optimized)
	if err != nil {
		return nil, Expect{}, fmt.Errorf("loadgen: local reference for %s: %w", s.Name, err)
	}
	return data, ExpectFromReport(rep), nil
}

// SplitChunks cuts STD text into n line-aligned chunks for session
// feeding.
func SplitChunks(data []byte, n int) [][]byte {
	if n < 1 {
		n = 1
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	if n > len(lines) {
		n = len(lines)
	}
	chunks := make([][]byte, 0, n)
	per := (len(lines) + n - 1) / n
	for i := 0; i < len(lines); i += per {
		end := i + per
		if end > len(lines) {
			end = len(lines)
		}
		chunks = append(chunks, bytes.Join(lines[i:end], nil))
	}
	return chunks
}

// Measure runs the scenario open-loop against baseURL and assembles the
// BENCH row. It primes connectivity first, scrapes the failover counter
// around the run, and reports — it does not assert; callers decide
// whether Hard or GaveUp counts fail the run.
func (s Scenario) Measure(topo, baseURL string, client *http.Client) (bench.BenchRow, RunStats, error) {
	data, exp, err := s.Payload()
	if err != nil {
		return bench.BenchRow{}, RunStats{}, err
	}
	if err := Prime(client, baseURL, data, loadPrimeBudget); err != nil {
		return bench.BenchRow{}, RunStats{}, fmt.Errorf("loadgen: %s against %s: %w", s.Name, topo, err)
	}
	var target Target
	var sessTarget *SessionTarget
	if s.Sessions {
		sessTarget = NewSessionTarget(s.Runner, baseURL, SplitChunks(data, s.Chunks), exp,
			"load-"+s.Name)
		if client != nil {
			sessTarget.Client = client
		}
		target = sessTarget
	} else {
		target = &CheckTarget{
			BaseURL: baseURL, Data: data, Expect: exp,
			KeyPrefix: "load-" + s.Name, Client: client,
		}
	}
	failBefore := Failovers(client, baseURL)
	stats := Run(s.Runner, s.Profile.Schedule(s.Duration), target)
	if sessTarget != nil {
		sessTarget.Close()
	}
	row := bench.BenchRow{
		Workload: s.payloadConfig().Name,
		Pattern:  string(s.Pattern),
		Threads:  s.payloadConfig().Threads,
		Engine:   fmt.Sprintf("load-%s-%s", s.Name, topo),
		Events:   stats.Events,
		Runs:     1,

		P50Ms:        round3(stats.P50()),
		P99Ms:        round3(stats.P99()),
		P999Ms:       round3(stats.P999()),
		Arrivals:     stats.Arrivals,
		Completed:    stats.Completed,
		Rejected:     stats.Rejected,
		Failovers:    Failovers(client, baseURL) - failBefore,
		OmissionDebt: stats.Debt,
		GaveUp:       stats.GaveUp,
		GaveUpMaxMs:  round3(stats.GaveUpMax()),
	}
	return row, stats, nil
}

// MeasureAgainst runs the named scenario against an externally booted
// topology (the e2e script's daemons) and fails on any client-visible
// hard failure.
func MeasureAgainst(name, baseURL string) (bench.BenchRow, error) {
	s, err := ByName(name)
	if err != nil {
		return bench.BenchRow{}, err
	}
	row, stats, err := s.Measure(TopoExternal, baseURL, nil)
	if err != nil {
		return bench.BenchRow{}, err
	}
	if stats.Hard > 0 {
		return bench.BenchRow{}, fmt.Errorf("loadgen: %s against %s: %d hard failures", name, baseURL, stats.Hard)
	}
	return row, nil
}

// newLoadBackend boots one in-process aerodromed granting every tenant
// the scenario's budget.
func newLoadBackend(s Scenario) (*server.Server, *httptest.Server) {
	cfg := server.Config{Algorithm: aerodrome.Optimized}
	if s.TenantBudget > 0 {
		cfg.TenantQuota = server.TenantQuota{BytesPerSec: s.TenantBudget}
	}
	srv, err := server.New(cfg)
	if err != nil {
		panic(fmt.Sprintf("loadgen: server: %v", err))
	}
	return srv, httptest.NewServer(srv)
}

// MeasureLoadRows measures the full grid: every non-smoke scenario
// against the single and router+2 topologies, plus the sessions
// scenario against the chaos topology (fault-injected router with one
// backend killed mid-run — the row whose failover column is expected to
// move). Hard failures panic, mirroring the saturation harness: wrong
// answers or non-retryable errors invalidate the whole artifact. The
// burst scenario additionally asserts its reason to exist — a tight
// budget must actually produce rejections.
func MeasureLoadRows() []bench.BenchRow {
	var rows []bench.BenchRow
	measure := func(s Scenario, topo, url string, client *http.Client) {
		row, stats, err := s.Measure(topo, url, client)
		if err != nil {
			panic(err.Error())
		}
		if stats.Hard > 0 {
			panic(fmt.Sprintf("loadgen: %s on %s: %d client-visible hard failures", s.Name, topo, stats.Hard))
		}
		if s.Name == "burst" && stats.Rejected == 0 {
			panic(fmt.Sprintf("loadgen: %s on %s: overload produced no rejections — quota layer asleep", s.Name, topo))
		}
		rows = append(rows, row)
	}

	for _, s := range Scenarios() {
		if s.Smoke {
			continue
		}

		srv, ts := newLoadBackend(s)
		measure(s, TopoSingle, ts.URL, nil)
		ts.Close()
		srv.Close()

		s1, ts1 := newLoadBackend(s)
		s2, ts2 := newLoadBackend(s)
		rt, err := server.NewRouter(server.RouterConfig{
			Backends: []string{ts1.URL, ts2.URL}, ProbeOnStart: true,
		})
		if err != nil {
			panic(fmt.Sprintf("loadgen: router: %v", err))
		}
		rts := httptest.NewServer(rt)
		measure(s, TopoRouter2, rts.URL, nil)
		rts.Close()
		rt.Close()
		ts1.Close()
		ts2.Close()
		s1.Close()
		s2.Close()
	}

	// Chaos: the sessions scenario through a fault-injected router, with
	// one backend killed halfway — journaled failover must keep every
	// session whole (hard failures still panic above), and the row
	// records how many sessions the router actually replayed.
	sess, err := ByName("sessions")
	if err != nil {
		panic(err.Error())
	}
	sess.Runner.Workers = 8 // more live sessions → more land on the doomed backend
	s3, ts3 := newLoadBackend(sess)
	s4, ts4 := newLoadBackend(sess)
	inj := faultinject.New(faultinject.Config{
		ErrorProb:   0.03,
		LatencyProb: 0.05,
		Latency:     2 * time.Millisecond,
		Seed:        42,
	})
	crt, err := server.NewRouter(server.RouterConfig{
		Backends:     []string{ts3.URL, ts4.URL},
		ProbeOnStart: true,
		Transport:    inj.WrapTransport(nil),
	})
	if err != nil {
		panic(fmt.Sprintf("loadgen: chaos router: %v", err))
	}
	crts := httptest.NewServer(crt)
	kill := time.AfterFunc(sess.Duration/2, func() { ts4.Close() })
	measure(sess, TopoRouter2Chaos, crts.URL, nil)
	kill.Stop()
	crts.Close()
	crt.Close()
	ts3.Close()
	ts4.Close()
	s3.Close()
	s4.Close()
	return rows
}
