package loadgen

// Integration tests against in-process aerodromed instances: the burst
// scenario must actually produce admission rejections while every
// admitted verdict stays pinned to the local reference; the sessions
// scenario's finalize reports must match the local CheckSTD verdict
// byte-for-byte (a mismatch is a Hard failure inside the target); and
// row identity fields must be a pure function of the scenario.

import (
	"strings"
	"testing"
	"time"
)

func TestBurstSmokeRejectsAndPins(t *testing.T) {
	s, err := ByName("burst-smoke")
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newLoadBackend(s)
	defer srv.Close()
	defer ts.Close()

	row, stats, err := s.Measure(TopoSingle, ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hard > 0 {
		t.Fatalf("%d hard failures (verdict mismatch or non-retryable status)", stats.Hard)
	}
	if stats.Rejected == 0 {
		t.Fatal("tight budget produced no rejections")
	}
	if stats.Completed == 0 {
		t.Fatal("no admitted checks — nothing exercised the verdict pin")
	}
	if row.Rejected != stats.Rejected || row.Completed != stats.Completed {
		t.Fatalf("row does not reflect stats: %+v vs %+v", row, stats)
	}
	if row.Engine != "load-burst-smoke-single" {
		t.Fatalf("engine label %q", row.Engine)
	}
	if row.P99Ms <= 0 {
		t.Fatalf("p99 %v with %d completions", row.P99Ms, stats.Completed)
	}
}

func TestSessionsVerdictIdentity(t *testing.T) {
	s, err := ByName("sessions")
	if err != nil {
		t.Fatal(err)
	}
	s.Duration = 700 * time.Millisecond
	srv, ts := newLoadBackend(s)
	defer srv.Close()
	defer ts.Close()

	_, exp, err := s.Payload()
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := s.Measure(TopoSingle, ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hard > 0 {
		t.Fatalf("%d hard failures — a finalize verdict diverged from local CheckSTD", stats.Hard)
	}
	if stats.Events == 0 {
		t.Fatal("no session ran to finalize; the verdict identity was never checked")
	}
	// Events only accumulate at finalize, one whole trace at a time, so
	// the total must be an exact multiple of the reference event count.
	if stats.Events%exp.Events != 0 {
		t.Fatalf("events %d is not a multiple of the trace's %d", stats.Events, exp.Events)
	}
}

func TestRowIdentityFieldsDeterministic(t *testing.T) {
	s, err := ByName("steady")
	if err != nil {
		t.Fatal(err)
	}
	s.Duration = 300 * time.Millisecond
	srv, ts := newLoadBackend(s)
	defer srv.Close()
	defer ts.Close()

	a, _, err := s.Measure(TopoSingle, ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := s.Measure(TopoSingle, ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Identity fields and the schedule-derived column are pure functions
	// of the scenario; only timing-derived columns may differ run to run.
	if a.Workload != b.Workload || a.Pattern != b.Pattern ||
		a.Threads != b.Threads || a.Engine != b.Engine || a.Arrivals != b.Arrivals {
		t.Fatalf("identity fields differ across runs:\n%+v\n%+v", a, b)
	}
	if a.Arrivals == 0 {
		t.Fatal("empty schedule")
	}
}

func TestScenarioZooShape(t *testing.T) {
	names := map[string]bool{}
	var nonSmoke int
	for _, s := range Scenarios() {
		if names[s.Name] {
			t.Fatalf("duplicate scenario %q", s.Name)
		}
		names[s.Name] = true
		if !s.Smoke {
			nonSmoke++
		}
		if s.Profile.Seed == 0 {
			t.Fatalf("%s: unseeded profile", s.Name)
		}
		if strings.ContainsAny(s.Name, " /") {
			t.Fatalf("%s: name must be label-safe", s.Name)
		}
		if _, _, err := s.Payload(); err != nil {
			t.Fatalf("%s: payload: %v", s.Name, err)
		}
	}
	// The BENCH grid promises at least three profiles across both core
	// topologies.
	if nonSmoke < 3 {
		t.Fatalf("only %d non-smoke scenarios", nonSmoke)
	}
	if _, err := ByName("no-such"); err == nil {
		t.Fatal("ByName accepted an unknown scenario")
	}
}
