package loadgen

// The HDR-style log-linear latency histogram this harness introduced
// now lives in internal/obs, where the server's per-stage latency
// metrics share it. The alias keeps the harness API (RunStats.Hist,
// Record/Count/Quantile) unchanged.

import "aerodrome/internal/obs"

// Hist is an HDR-style log-linear latency histogram: microsecond values
// bucketed exactly below 64µs and with 32 sub-buckets per octave above
// (~3% relative quantile error), recorded lock-free. See internal/obs.
type Hist = obs.Histogram
