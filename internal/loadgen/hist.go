package loadgen

// Hist is an HDR-style log-linear latency histogram: microsecond values
// bucketed exactly below 64µs and with 32 sub-buckets per octave above,
// bounding relative quantile error at ~3% while keeping the whole
// structure a fixed array of atomics — workers record concurrently with
// no locks and no allocation, so the measurement cannot perturb the
// tail it reports.

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// histSubBits is log2 of the sub-buckets per octave.
	histSubBits = 5
	// histLinear is the exact-count region: values below it get their own
	// bucket.
	histLinear = 1 << (histSubBits + 1)
	// histSize covers ~2^36 µs (≈ 19 hours) before clamping to the last
	// bucket — far past any latency this harness can observe.
	histSize = 1024
)

// Hist buckets microsecond values. The zero value is ready to use.
type Hist struct {
	counts [histSize]atomic.Int64
	total  atomic.Int64
}

// bucketIndex maps a microsecond value to its bucket: identity below
// histLinear, then octave*32 + top-6-bits above, which lines up exactly
// with the linear region (v=63 → 63, v=64 → 64).
func bucketIndex(v uint64) int {
	if v < histLinear {
		return int(v)
	}
	exp := uint(bits.Len64(v)) - (histSubBits + 1)
	i := int(exp)<<histSubBits + int(v>>exp)
	if i >= histSize {
		return histSize - 1
	}
	return i
}

// bucketMid returns a representative (midpoint) value for a bucket.
func bucketMid(i int) uint64 {
	if i < histLinear {
		return uint64(i)
	}
	exp := uint(i>>histSubBits) - 1
	m := uint64(i) - uint64(exp)<<histSubBits
	return m<<exp + 1<<exp/2
}

// Record adds one latency observation.
func (h *Hist) Record(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	h.counts[bucketIndex(uint64(us))].Add(1)
	h.total.Add(1)
}

// Count returns the number of recorded observations.
func (h *Hist) Count() int64 { return h.total.Load() }

// Quantile returns the q-quantile (0 < q ≤ 1) in milliseconds, or 0
// with no observations. Concurrent Records move the answer by at most
// the in-flight observations; callers quiesce workers before reading.
func (h *Hist) Quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for i := 0; i < histSize; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			return float64(bucketMid(i)) / 1e3
		}
	}
	return float64(bucketMid(histSize-1)) / 1e3
}
