package loadgen

// Open-loop load generation: a seeded arrival schedule is computed up
// front (Poisson thinning against the profile's peak rate, so the same
// profile and seed always yield the same arrivals), then a dispatcher
// walks it on the wall clock handing arrivals to a worker pool through
// a bounded queue. The dispatcher never waits for the target: when the
// queue is full the arrival is counted as coordinated-omission debt and
// dropped, and every latency is measured from the arrival's *scheduled*
// time — so a slow server shows up as tail latency and debt, never as a
// quietly stretched schedule (the closed-loop failure mode this package
// exists to avoid).

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Shape selects how a profile's rate evolves over the run.
type Shape string

const (
	// ShapeConstant holds PeakRPS for the whole run.
	ShapeConstant Shape = "constant"
	// ShapeRamp grows linearly from BaseRPS to PeakRPS.
	ShapeRamp Shape = "ramp"
	// ShapeSquare alternates Period/2 at BaseRPS with Period/2 at
	// PeakRPS, starting low — the burst profile.
	ShapeSquare Shape = "square"
)

// RateProfile is one tenant's deterministic arrival process.
type RateProfile struct {
	Tenant  string
	Shape   Shape
	BaseRPS float64
	PeakRPS float64
	// Period is the square-wave cycle (ignored by other shapes).
	Period time.Duration
	// Seed fixes the schedule: same profile + seed ⇒ identical arrivals.
	Seed int64
}

// rate returns the instantaneous RPS at offset t of a run of length d.
func (p RateProfile) rate(t, d time.Duration) float64 {
	switch p.Shape {
	case ShapeRamp:
		if d <= 0 {
			return p.PeakRPS
		}
		f := float64(t) / float64(d)
		return p.BaseRPS + (p.PeakRPS-p.BaseRPS)*f
	case ShapeSquare:
		period := p.Period
		if period <= 0 {
			period = 500 * time.Millisecond
		}
		if (t/(period/2))%2 == 0 {
			return p.BaseRPS
		}
		return p.PeakRPS
	default:
		return p.PeakRPS
	}
}

// Arrival is one scheduled request.
type Arrival struct {
	// At is the offset from run start at which the request is due.
	At time.Duration
	// Tenant is the profile's tenant (the quota bucket it spends).
	Tenant string
	// Seq numbers arrivals within a schedule; targets derive per-request
	// routing keys from it.
	Seq int
}

// Schedule materializes the profile's arrivals for a run of length d by
// thinning a homogeneous Poisson process at the peak rate: exponential
// gaps at PeakRPS, each kept with probability rate(t)/PeakRPS. Both
// draws come from one seeded source, so the schedule is a pure function
// of (profile, d).
func (p RateProfile) Schedule(d time.Duration) []Arrival {
	peak := p.PeakRPS
	if base := p.BaseRPS; base > peak {
		peak = base
	}
	if peak <= 0 || d <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(p.Seed))
	var out []Arrival
	var t time.Duration
	for {
		gap := time.Duration(rng.ExpFloat64() / peak * float64(time.Second))
		if gap <= 0 {
			gap = time.Nanosecond
		}
		t += gap
		if t >= d {
			return out
		}
		if accept := p.rate(t, d) / peak; rng.Float64() < accept {
			out = append(out, Arrival{At: t, Tenant: p.Tenant, Seq: len(out)})
		}
	}
}

// Result is what a target reports for one arrival.
type Result struct {
	// OK means the request eventually completed (admitted and answered).
	OK bool
	// Hard means a client-visible hard failure — wrong verdict, non-
	// retryable status, lost session. Scenarios assert these stay zero.
	Hard bool
	// Rejections counts the retryable refusals (429/502/503, transport
	// errors) observed on the way to the final outcome.
	Rejections int64
	// Events is the number of trace events the request checked.
	Events int64
}

// Target performs one request per arrival. Do runs on a fixed worker
// goroutine (0 ≤ worker < Workers), so targets may keep per-worker
// state — the session target owns one live session per worker.
type Target interface {
	Do(worker int, a Arrival) Result
}

// TargetFunc adapts a function to the Target interface.
type TargetFunc func(worker int, a Arrival) Result

func (f TargetFunc) Do(worker int, a Arrival) Result { return f(worker, a) }

// RunnerConfig sizes the open-loop machinery.
type RunnerConfig struct {
	// Workers is the pool draining the queue (default 16).
	Workers int
	// Queue bounds dispatched-but-unstarted arrivals (default 64). A
	// full queue turns arrivals into debt instead of blocking the clock.
	Queue int
}

func (c RunnerConfig) workers() int {
	if c.Workers <= 0 {
		return 16
	}
	return c.Workers
}

func (c RunnerConfig) queue() int {
	if c.Queue <= 0 {
		return 64
	}
	return c.Queue
}

// RunStats is one run's accounting.
type RunStats struct {
	// Arrivals is the schedule length; Dispatched of them reached the
	// queue, Debt were dropped on a full queue (coordinated-omission
	// debt: demand the target never even saw).
	Arrivals   int64
	Dispatched int64
	Debt       int64
	// Completed/Rejected/Hard aggregate the targets' Results; GaveUp
	// counts dispatched arrivals that exhausted retries on retryable
	// refusals (expected under deliberate overload, distinct from Hard).
	Completed int64
	Rejected  int64
	Hard      int64
	GaveUp    int64
	// Events sums checked events across completed requests.
	Events int64
	// MaxDispatchLag is the worst observed lateness of the dispatcher
	// against the schedule — the open-loop invariant's witness: it stays
	// bounded by sleep granularity no matter how slow the target is.
	MaxDispatchLag time.Duration
	// Hist holds end-to-end latencies of completed requests, measured
	// from each arrival's scheduled time.
	Hist *Hist
	// GaveUpHist holds end-to-end latencies of the GaveUp arrivals —
	// scheduled time to the moment the target exhausted its retries.
	// Kept separate from Hist on purpose: folding retry-exhausted
	// arrivals into the completion quantiles would poison them, but
	// dropping them entirely lets an overloaded run's tail read rosier
	// than what clients experienced.
	GaveUpHist *Hist
}

// P50, P99 and P999 report the standard latency quantiles in ms.
func (s RunStats) P50() float64  { return s.Hist.Quantile(0.50) }
func (s RunStats) P99() float64  { return s.Hist.Quantile(0.99) }
func (s RunStats) P999() float64 { return s.Hist.Quantile(0.999) }

// GaveUpP99 and GaveUpMax report how long gave-up arrivals were held
// before the harness stopped retrying (ms; 0 when none gave up).
func (s RunStats) GaveUpP99() float64 { return s.GaveUpHist.Quantile(0.99) }
func (s RunStats) GaveUpMax() float64 { return s.GaveUpHist.Quantile(1) }

// Run drives the schedule against the target and blocks until every
// dispatched arrival has completed. The arrival clock runs on the
// calling goroutine and never blocks on the target.
func Run(cfg RunnerConfig, schedule []Arrival, target Target) RunStats {
	stats := RunStats{Arrivals: int64(len(schedule)), Hist: &Hist{}, GaveUpHist: &Hist{}}
	type job struct {
		a         Arrival
		scheduled time.Time
	}
	queue := make(chan job, cfg.queue())

	var completed, rejected, hard, gaveUp, events atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers(); w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for j := range queue {
				res := target.Do(worker, j.a)
				rejected.Add(res.Rejections)
				switch {
				case res.Hard:
					hard.Add(1)
				case res.OK:
					completed.Add(1)
					events.Add(res.Events)
					stats.Hist.Record(time.Since(j.scheduled))
				default:
					gaveUp.Add(1)
					stats.GaveUpHist.Record(time.Since(j.scheduled))
				}
			}
		}(w)
	}

	start := time.Now()
	var maxLag time.Duration
	for _, a := range schedule {
		due := start.Add(a.At)
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		if lag := time.Since(due); lag > maxLag {
			maxLag = lag
		}
		select {
		case queue <- job{a: a, scheduled: due}:
			stats.Dispatched++
		default:
			// Queue full: the schedule does not stretch to hide an
			// overloaded target — the arrival becomes debt.
			stats.Debt++
		}
	}
	close(queue)
	wg.Wait()

	stats.Completed = completed.Load()
	stats.Rejected = rejected.Load()
	stats.Hard = hard.Load()
	stats.GaveUp = gaveUp.Load()
	stats.Events = events.Load()
	stats.MaxDispatchLag = maxLag
	return stats
}

// ExpectedArrivals returns the profile's mean arrival count over d —
// useful for sizing assertions, not a promise (the process is Poisson).
func (p RateProfile) ExpectedArrivals(d time.Duration) float64 {
	const steps = 1000
	var sum float64
	for i := 0; i < steps; i++ {
		t := time.Duration(float64(d) * (float64(i) + 0.5) / steps)
		sum += p.rate(t, d)
	}
	return sum / steps * d.Seconds()
}

// round3 rounds to microsecond (3-decimal ms) resolution for stable row
// fields.
func round3(v float64) float64 { return math.Round(v*1e3) / 1e3 }
