package serial

import (
	"math/rand"
	"testing"

	"aerodrome/internal/testutil"
	"aerodrome/internal/trace"
)

func TestPaperTraces(t *testing.T) {
	cases := []struct {
		name string
		tr   *trace.Trace
		want bool // serializable?
	}{
		{"rho1", testutil.Rho1(), true},
		{"rho2", testutil.Rho2(), false},
		{"rho3", testutil.Rho3(), false},
		{"rho4", testutil.Rho4(), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rep := Check(c.tr)
			if rep.Serializable != c.want {
				t.Fatalf("Check(%s).Serializable = %v, want %v", c.name, rep.Serializable, c.want)
			}
			if !c.want && len(rep.Witness) < 2 {
				t.Fatalf("violation must come with a witness of ≥2 txns, got %v", rep.Witness)
			}
			if c.want && len(rep.Witness) != 0 {
				t.Fatalf("serializable trace must have no witness")
			}
			ex, ok := ExhaustiveSerializable(c.tr)
			if !ok {
				t.Fatalf("exhaustive checker refused a tiny trace")
			}
			if ex != c.want {
				t.Fatalf("ExhaustiveSerializable = %v, want %v", ex, c.want)
			}
		})
	}
}

func TestRho4WitnessIsAllThree(t *testing.T) {
	// In ρ4 the ⋖Txn edges are T1→T2 (e2≤e5), T2→T3 (e4≤e8), T3→T1
	// (e9≤e11) and the transitive T2→T1 (e4≤e8≤e9≤e11): the whole graph is
	// one strongly connected component. Transactions are numbered in start
	// order: T1=0, T2=1, T3=2.
	rep := Check(testutil.Rho4())
	if rep.Serializable {
		t.Fatal("rho4 must not be serializable")
	}
	in := map[trace.TxnID]bool{}
	for _, w := range rep.Witness {
		in[w] = true
	}
	if !in[0] || !in[1] || !in[2] {
		t.Fatalf("witness should contain T1, T2 and T3, got %v", rep.Witness)
	}
}

func TestEmptyAndTrivialTraces(t *testing.T) {
	empty := &trace.Trace{}
	if rep := Check(empty); !rep.Serializable || rep.Txns != 0 {
		t.Fatalf("empty trace: %+v", rep)
	}
	if ok, handled := ExhaustiveSerializable(empty); !ok || !handled {
		t.Fatalf("empty trace exhaustive")
	}

	b := trace.NewBuilder()
	t1 := b.Thread("t1")
	x := b.Var("x")
	b.Begin(t1).Write(t1, x).Read(t1, x).End(t1)
	one := b.Build()
	if rep := Check(one); !rep.Serializable || rep.Txns != 1 {
		t.Fatalf("single txn: %+v", rep)
	}
}

func TestUnaryTransactionsParticipate(t *testing.T) {
	// A cycle between a block transaction and... unary transactions alone
	// cannot form a cycle (single events are never mutually CHB-ordered),
	// but a unary event can participate in a cycle with a block:
	//   t1: ⊲ w(x)        r(y) ⊳
	//   t2:        r(x) w(y)            (unary events)
	// T1 → U(r(x)) via w(x)≤r(x)·, U(w(y)) → T1 via w(y)≤r(y).
	// That is a path, not a cycle, unless the unary events are in one txn.
	// Here they are separate unary txns: U1=r(x), U2=w(y); edges
	// T1→U1, U2→T1 — acyclic. So this trace is serializable.
	b := trace.NewBuilder()
	t1, t2 := b.Thread("t1"), b.Thread("t2")
	x, y := b.Var("x"), b.Var("y")
	b.Begin(t1).Write(t1, x).Read(t2, x).Write(t2, y).Read(t1, y).End(t1)
	tr := b.Build()
	rep := Check(tr)
	// U1 and U2 are same-thread events: U1 ≤CHB U2, so U1→U2 exists and the
	// cycle T1→U1→U2→T1 closes after all. The trace is NOT serializable.
	if rep.Serializable {
		t.Fatalf("unary same-thread chain closes the cycle; must be a violation")
	}
	ex, ok := ExhaustiveSerializable(tr)
	if !ok || ex {
		t.Fatalf("exhaustive disagrees: ex=%v ok=%v", ex, ok)
	}
}

func TestWriteSkewIsSerializable(t *testing.T) {
	// Two transactions that only read a common variable do not conflict.
	b := trace.NewBuilder()
	t1, t2 := b.Thread("t1"), b.Thread("t2")
	x := b.Var("x")
	b.Begin(t1).Begin(t2).Read(t1, x).Read(t2, x).Read(t1, x).End(t1).End(t2)
	rep := Check(b.Build())
	if !rep.Serializable {
		t.Fatalf("read-only transactions must be serializable")
	}
}

func TestLockInducedCycle(t *testing.T) {
	// t1: ⊲ acq rel       acq rel ⊳
	// t2:         acq rel
	// Edges: T1→T2 (rel₁≤acq₂), T2→T1 (rel₂≤acq₃) — a violation through
	// lock conflicts only.
	b := trace.NewBuilder()
	t1, t2 := b.Thread("t1"), b.Thread("t2")
	l := b.Lock("l")
	b.Begin(t1).Begin(t2).
		Acquire(t1, l).Release(t1, l).
		Acquire(t2, l).Release(t2, l).
		Acquire(t1, l).Release(t1, l).
		End(t1).End(t2)
	rep := Check(b.Build())
	if rep.Serializable {
		t.Fatalf("lock ping-pong inside open transactions must violate")
	}
}

func TestForkJoinCycle(t *testing.T) {
	// t1: ⊲ w(x) fork(t2) join(t2) r(y) ⊳ — serializable: child between.
	b := trace.NewBuilder()
	t1, t2 := b.Thread("t1"), b.Thread("t2")
	x, y := b.Var("x"), b.Var("y")
	b.Begin(t1).Write(t1, x).Fork(t1, t2).End(t1).
		Begin(t2).Read(t2, x).Write(t2, y).End(t2).
		Begin(t1).Join(t1, t2).Read(t1, y).End(t1)
	rep := Check(b.Build())
	if !rep.Serializable {
		t.Fatalf("fork/join pipeline must be serializable, witness %v", rep.Witness)
	}

	// Violation: the join happens inside the same transaction that wrote x
	// before forking, and the child read x: T_child → T1 (join conflict) and
	// T1 → T_child (w(x) ≤ r(x)) — cycle.
	b2 := trace.NewBuilder()
	u1, u2 := b2.Thread("t1"), b2.Thread("t2")
	xx := b2.Var("x")
	b2.Begin(u1).Write(u1, xx).Fork(u1, u2).
		Begin(u2).Read(u2, xx).End(u2).
		Join(u1, u2).End(u1)
	rep2 := Check(b2.Build())
	if rep2.Serializable {
		t.Fatalf("join inside conflicting transaction must violate")
	}
}

func TestExhaustiveRefusesLargeTraces(t *testing.T) {
	b := trace.NewBuilder()
	t1 := b.Thread("t1")
	x := b.Var("x")
	for i := 0; i < MaxExhaustiveTxns+1; i++ {
		b.Begin(t1).Write(t1, x).End(t1)
	}
	if _, ok := ExhaustiveSerializable(b.Build()); ok {
		t.Fatalf("should refuse > MaxExhaustiveTxns transactions")
	}
}

// TestCheckAgainstExhaustive cross-validates the graph-based decision
// against definition-level brute force on random tiny traces.
func TestCheckAgainstExhaustive(t *testing.T) {
	r := rand.New(rand.NewSource(2020))
	checked := 0
	for iter := 0; iter < 3000 && checked < 600; iter++ {
		tr := testutil.RandomTrace(r, testutil.GenOpts{
			Threads: 1 + r.Intn(3),
			Vars:    1 + r.Intn(2),
			Locks:   1,
			Steps:   3 + r.Intn(10),
			TxnBias: 4,
		})
		seg := trace.Transactions(tr)
		if seg.Count() > MaxExhaustiveTxns {
			continue
		}
		checked++
		want, ok := ExhaustiveSerializable(tr)
		if !ok {
			continue
		}
		got := Check(tr)
		if got.Serializable != want {
			t.Fatalf("iter %d: Check=%v exhaustive=%v\nevents: %v",
				iter, got.Serializable, want, tr.Events)
		}
	}
	if checked < 100 {
		t.Fatalf("too few traces exercised: %d", checked)
	}
}

func TestReportCounts(t *testing.T) {
	rep := Check(testutil.Rho1())
	// ρ1 has 3 block transactions and no unary events.
	if rep.Txns != 3 {
		t.Fatalf("Txns = %d, want 3", rep.Txns)
	}
	// Edges: T1→T2 (w(x)≤r(x)), T3→T1 (w(z)≤r(z)). T3? e6 after e5...
	// T1→T2 and T3→T1 are the only inter-transaction orderings.
	if rep.Edges != 2 {
		t.Fatalf("Edges = %d, want 2", rep.Edges)
	}
}
