// Package serial decides conflict serializability of complete traces by
// explicit construction, serving as the reference oracle against which the
// streaming checkers (internal/core, internal/velodrome) are differentially
// validated.
//
// Two independent deciders are provided:
//
//   - Check: builds the full transaction graph over ⋖Txn (via the ≤CHB index
//     of internal/chb) and looks for a strongly connected component with at
//     least two transactions (Definition 1 of the paper). O(n²) per trace.
//   - ExhaustiveSerializable: searches all orderings of the transactions for
//     a serial arrangement that preserves the order of every conflicting
//     event pair — the definition-level semantics of "equivalent to a serial
//     execution by commuting adjacent non-conflicting events". Exponential;
//     only usable on tiny traces, where it cross-checks Check.
package serial

import (
	"aerodrome/internal/chb"
	"aerodrome/internal/trace"
)

// Report is the outcome of a serializability check.
type Report struct {
	// Serializable is true iff the trace is conflict serializable.
	Serializable bool
	// Witness, when not serializable, lists the transactions of one cycle
	// in the ⋖Txn graph (a strongly connected component, in discovery
	// order). Empty when Serializable.
	Witness []trace.TxnID
	// Txns is the number of transactions considered (including unary).
	Txns int
	// Edges is the number of distinct ⋖Txn edges between distinct
	// transactions.
	Edges int
}

// Check decides conflict serializability of a complete trace using the
// transaction graph. Traces with active (unfinished) transactions are
// handled: their events still induce ⋖Txn edges, per Definition 1.
func Check(tr *trace.Trace) *Report {
	seg := trace.Transactions(tr)
	idx := chb.BuildIndex(tr)
	n := tr.Len()
	k := seg.Count()

	adj := make([]map[int32]struct{}, k)
	edges := 0
	addEdge := func(a, b trace.TxnID) {
		if a == b {
			return
		}
		if adj[a] == nil {
			adj[a] = map[int32]struct{}{}
		}
		if _, ok := adj[a][int32(b)]; !ok {
			adj[a][int32(b)] = struct{}{}
			edges++
		}
	}
	// T ⋖Txn T′ iff some e ∈ T, e′ ∈ T′ with e ≤CHB e′.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if seg.ByEvent[i] == seg.ByEvent[j] {
				continue
			}
			if idx.Ordered(i, j) {
				addEdge(seg.ByEvent[i], seg.ByEvent[j])
			}
		}
	}

	scc := tarjan(k, adj)
	for _, comp := range scc {
		if len(comp) > 1 {
			witness := make([]trace.TxnID, len(comp))
			for i, c := range comp {
				witness[i] = trace.TxnID(c)
			}
			return &Report{Serializable: false, Witness: witness, Txns: k, Edges: edges}
		}
	}
	return &Report{Serializable: true, Txns: k, Edges: edges}
}

// tarjan returns the strongly connected components of the graph on nodes
// 0..k-1 with adjacency adj. Iterative to avoid stack limits.
func tarjan(k int, adj []map[int32]struct{}) [][]int32 {
	const unvisited = -1
	index := make([]int32, k)
	low := make([]int32, k)
	onStack := make([]bool, k)
	for i := range index {
		index[i] = unvisited
	}
	var (
		counter int32
		stack   []int32
		comps   [][]int32
	)

	type frame struct {
		v     int32
		iter  []int32 // remaining successors
		child int32   // successor being processed, -1 before first
	}

	for start := int32(0); start < int32(k); start++ {
		if index[start] != unvisited {
			continue
		}
		var callStack []frame
		push := func(v int32) {
			index[v] = counter
			low[v] = counter
			counter++
			stack = append(stack, v)
			onStack[v] = true
			succ := make([]int32, 0, len(adj[v]))
			for s := range adj[v] {
				succ = append(succ, s)
			}
			callStack = append(callStack, frame{v: v, iter: succ, child: -1})
		}
		push(start)
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			if f.child >= 0 {
				if low[f.child] < low[f.v] {
					low[f.v] = low[f.child]
				}
				f.child = -1
			}
			advanced := false
			for len(f.iter) > 0 {
				w := f.iter[0]
				f.iter = f.iter[1:]
				if index[w] == unvisited {
					f.child = w
					push(w)
					advanced = true
					break
				} else if onStack[w] {
					if index[w] < low[f.v] {
						low[f.v] = index[w]
					}
				}
			}
			if advanced {
				continue
			}
			// finished v
			if low[f.v] == index[f.v] {
				var comp []int32
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == f.v {
						break
					}
				}
				comps = append(comps, comp)
			}
			v := f.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				callStack[len(callStack)-1].child = v
			}
		}
	}
	return comps
}

// MaxExhaustiveTxns bounds the transaction count ExhaustiveSerializable will
// attempt (k! permutations).
const MaxExhaustiveTxns = 8

// ExhaustiveSerializable decides conflict serializability by brute force:
// it tries every ordering of the trace's transactions (unary transactions
// included) and accepts if some serial arrangement preserves the relative
// order of every directly conflicting event pair. The second return value is
// false when the trace has too many transactions to enumerate.
func ExhaustiveSerializable(tr *trace.Trace) (serializable, ok bool) {
	seg := trace.Transactions(tr)
	k := seg.Count()
	if k > MaxExhaustiveTxns {
		return false, false
	}
	n := tr.Len()

	// Events of each transaction in trace order.
	members := make([][]int, k)
	for i := 0; i < n; i++ {
		id := seg.ByEvent[i]
		members[id] = append(members[id], i)
	}

	// All directly conflicting pairs (i < j).
	type pair struct{ i, j int }
	var conflicts []pair
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if chb.Conflicting(tr.Events[i], tr.Events[j]) {
				conflicts = append(conflicts, pair{i, j})
			}
		}
	}

	pos := make([]int, n) // position of each event in the candidate serial trace
	perm := make([]int, k)
	for i := range perm {
		perm[i] = i
	}

	valid := func() bool {
		p := 0
		for _, txn := range perm {
			for _, ev := range members[txn] {
				pos[ev] = p
				p++
			}
		}
		for _, c := range conflicts {
			if pos[c.i] > pos[c.j] {
				return false
			}
		}
		return true
	}

	// Heap's algorithm over perm.
	var rec func(m int) bool
	rec = func(m int) bool {
		if m == 1 {
			return valid()
		}
		for i := 0; i < m; i++ {
			if rec(m - 1) {
				return true
			}
			if m%2 == 0 {
				perm[i], perm[m-1] = perm[m-1], perm[i]
			} else {
				perm[0], perm[m-1] = perm[m-1], perm[0]
			}
		}
		return false
	}
	if k == 0 {
		return true, true
	}
	return rec(k), true
}
