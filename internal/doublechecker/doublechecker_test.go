package doublechecker_test

import (
	"math/rand"
	"testing"

	"aerodrome/internal/core"
	"aerodrome/internal/doublechecker"
	"aerodrome/internal/testutil"
	"aerodrome/internal/trace"
	"aerodrome/internal/velodrome"
	"aerodrome/internal/workload"
)

func TestPaperTraces(t *testing.T) {
	cases := []struct {
		name string
		tr   *trace.Trace
		viol bool
	}{
		{"rho1", testutil.Rho1(), false},
		{"rho2", testutil.Rho2(), true},
		{"rho3", testutil.Rho3(), true},
		{"rho4", testutil.Rho4(), true},
	}
	for _, c := range cases {
		dc := doublechecker.New(0)
		v, _ := core.Run(dc, c.tr.Cursor())
		if (v != nil) != c.viol {
			t.Errorf("%s: violation=%v, want %v", c.name, v != nil, c.viol)
		}
	}
}

func TestAgreesWithVelodrome(t *testing.T) {
	// DoubleChecker's verdict and detection index must match Velodrome's
	// (its phase-2 engine) on every random trace, regardless of how many
	// phase-1 false alarms occur along the way.
	r := rand.New(rand.NewSource(1234))
	iters := 800
	if testing.Short() {
		iters = 120
	}
	for iter := 0; iter < iters; iter++ {
		tr := testutil.RandomTrace(r, testutil.GenOpts{
			Threads: 1 + r.Intn(4),
			Vars:    1 + r.Intn(3),
			Locks:   1 + r.Intn(2),
			Steps:   5 + r.Intn(120),
			TxnBias: r.Intn(8),
		})
		for _, window := range []int{1, 2, 8, 64} {
			dc := doublechecker.New(window)
			vd := velodrome.New()
			dcV, _ := core.Run(dc, tr.Cursor())
			vdV, _ := core.Run(vd, tr.Cursor())
			if (dcV != nil) != (vdV != nil) {
				t.Fatalf("iter %d w=%d: doublechecker=%v velodrome=%v\n%v",
					iter, window, dcV != nil, vdV != nil, tr.Events)
			}
			if dcV != nil && dcV.Index != vdV.Index {
				t.Fatalf("iter %d w=%d: index %d != velodrome %d",
					iter, window, dcV.Index, vdV.Index)
			}
		}
	}
}

func TestFalseAlarmRefinement(t *testing.T) {
	// A workload with heavy cross-thread traffic but no violation: bundling
	// should cause at least one false alarm at a large window, the window
	// must shrink, and the verdict must stay clean.
	cfg := workload.Config{
		Name: "refine", Threads: 4, Vars: 8, Locks: 2, Events: 4_000,
		OpsPerTxn: 2, Pattern: workload.PatternChain,
		Inject: workload.ViolationNone, Seed: 5,
	}
	dc := doublechecker.New(128)
	v, _ := core.Run(dc, workload.New(cfg))
	if v != nil {
		t.Fatalf("chain workload is serializable: %v", v)
	}
	s := dc.Stats()
	if s.Flags == 0 || s.FalseAlarms == 0 {
		t.Fatalf("expected coarse false alarms on a chain workload, got %+v", s)
	}
	if s.FalseAlarms != s.Flags {
		t.Fatalf("all flags should be refuted on a serializable trace: %+v", s)
	}
	if s.FinalWindow >= 128 {
		t.Fatalf("window should have been refined: %+v", s)
	}
}

func TestConfirmedViolation(t *testing.T) {
	cfg := workload.Config{
		Name: "confirm", Threads: 5, Vars: 64, Locks: 2, Events: 3_000,
		Pattern: workload.PatternChain, Inject: workload.ViolationCross,
		InjectAt: 0.7, Seed: 9,
	}
	dc := doublechecker.New(0)
	v, _ := core.Run(dc, workload.New(cfg))
	if v == nil {
		t.Fatalf("expected the injected violation")
	}
	if v.Algorithm != "doublechecker" {
		t.Fatalf("Algorithm = %q", v.Algorithm)
	}
	s := dc.Stats()
	if s.Replays == 0 || s.ReplayedEvents == 0 {
		t.Fatalf("phase 2 should have replayed: %+v", s)
	}
}

func TestLatchingAndAccessors(t *testing.T) {
	dc := doublechecker.New(4)
	if dc.Name() != "doublechecker" {
		t.Fatalf("Name = %q", dc.Name())
	}
	v1, _ := core.Run(dc, testutil.Rho2().Cursor())
	if v1 == nil {
		t.Fatalf("rho2 must violate")
	}
	v2 := dc.Process(trace.Event{Thread: 0, Kind: trace.Read})
	if v2 != v1 || dc.Violation() != v1 {
		t.Fatalf("must latch")
	}
	if dc.Processed() == 0 {
		t.Fatalf("Processed should count events")
	}
}
