// Package doublechecker implements a DoubleChecker-style two-phase
// conflict-serializability analysis (Biswas, Huang, Sengupta, Bond — PLDI
// 2014), included as the related-work extension the paper discusses in §5.1
// and §6 but deliberately does not table ("not an apples-to-apples
// comparison": the real DoubleChecker's first phase runs inside the JVM
// while the program executes; ours, like the rest of this repository,
// analyzes logged traces).
//
// Phase 1 is a fast, imprecise cycle detector: consecutive transactions of
// each thread are coarsened into bundles of up to Window transactions, and
// a Velodrome-style graph is maintained over bundles. A cycle among bundles
// over-approximates a cycle among transactions — distinct constituent
// transactions can produce mutual bundle edges without any real
// transaction-level cycle — so a phase-1 hit is only a *flag*.
//
// Phase 2 re-analyzes the trace prefix up to the flag with the precise
// transaction-level checker (Velodrome, matching the real DoubleChecker's
// transaction-graph second pass — and matching phase 1's detection
// semantics: a cycle among still-active transactions counts). A confirmed
// violation is reported with the precise detection point; a refuted flag
// halves the bundle window and phase 1 is rebuilt from the retained prefix,
// repeating until the rebuild runs flag-free (at Window=1 the bundle graph
// coincides with the transaction graph, so a flag there is always
// confirmed: the refinement loop terminates).
package doublechecker

import (
	"aerodrome/internal/core"
	"aerodrome/internal/graph"
	"aerodrome/internal/trace"
	"aerodrome/internal/velodrome"
)

// DefaultWindow is the initial coarsening factor.
const DefaultWindow = 64

// Stats reports the two-phase dynamics.
type Stats struct {
	// Flags counts phase-1 cycle flags (including the confirmed one).
	Flags int
	// FalseAlarms counts refuted flags.
	FalseAlarms int
	// Replays counts phase-2 precise replays (== Flags).
	Replays int
	// ReplayedEvents counts events re-processed by phase 2.
	ReplayedEvents int64
	// FinalWindow is the bundle window after adaptation.
	FinalWindow int
}

// Checker is the two-phase analysis. It implements core.Engine.
//
// Unlike the streaming engines, it retains the consumed prefix in memory so
// that phase 2 can replay it — the in-vivo original does not need this, and
// the paper's caveat about fair comparison applies here too.
type Checker struct {
	window int
	events []trace.Event
	coarse *coarse
	n      int64
	viol   *core.Violation
	stats  Stats
}

// New returns a two-phase checker with the given initial bundle window
// (DefaultWindow if w ≤ 0).
func New(w int) *Checker {
	if w <= 0 {
		w = DefaultWindow
	}
	c := &Checker{window: w}
	c.coarse = newCoarse(w)
	return c
}

// Name implements core.Engine.
func (c *Checker) Name() string { return "doublechecker" }

// Processed implements core.Engine.
func (c *Checker) Processed() int64 { return c.n }

// Violation implements core.Engine.
func (c *Checker) Violation() *core.Violation { return c.viol }

// Stats returns phase dynamics; FinalWindow reflects adaptation.
func (c *Checker) Stats() Stats {
	s := c.stats
	s.FinalWindow = c.window
	return s
}

// Process implements core.Engine.
func (c *Checker) Process(e trace.Event) *core.Violation {
	if c.viol != nil {
		return c.viol
	}
	c.events = append(c.events, e)
	flagged := c.coarse.process(e)
	c.n++
	if !flagged {
		return nil
	}
	for {
		// Phase 2: precise transaction-level replay of the retained prefix.
		c.stats.Flags++
		c.stats.Replays++
		precise := velodrome.New()
		var confirmed *core.Violation
		for i := range c.events {
			c.stats.ReplayedEvents++
			if v := precise.Process(c.events[i]); v != nil {
				confirmed = v
				break
			}
		}
		if confirmed != nil {
			c.viol = &core.Violation{
				Index: confirmed.Index, Event: confirmed.Event,
				ActiveThread: confirmed.ActiveThread,
				Check:        confirmed.Check, Algorithm: c.Name(),
			}
			return c.viol
		}
		// False alarm: refine the abstraction and rebuild phase 1 from the
		// prefix. A rebuild that flags again is re-judged by phase 2 at the
		// finer window; a flag-free rebuild leaves a complete, acyclic
		// bundle graph (no edge was ever dropped) and processing resumes.
		c.stats.FalseAlarms++
		if c.window > 1 {
			c.window /= 2
		}
		c.coarse = newCoarse(c.window)
		reflagged := false
		for _, old := range c.events {
			if c.coarse.process(old) {
				reflagged = true
				break
			}
		}
		if !reflagged {
			return nil
		}
	}
}

// --- phase 1: coarse bundle graph ---------------------------------------------

type bundleThread struct {
	depth    int
	cur      graph.NodeID // current bundle
	txnsIn   int          // transactions already folded into cur
	pendingF graph.NodeID
	started  bool
}

type coarse struct {
	debug   func(op string, u, v graph.NodeID, cyc bool)
	window  int
	det     graph.Detector
	threads []bundleThread
	lastW   []graph.NodeID
	lastRs  [][]graph.NodeID
	lastRel []graph.NodeID
	next    graph.NodeID
	flagged bool
}

const noBundle = graph.NodeID(-1)

func newCoarse(window int) *coarse {
	return &coarse{window: window, det: graph.NewDFS()}
}

func (c *coarse) thread(t int) *bundleThread {
	for len(c.threads) <= t {
		c.threads = append(c.threads, bundleThread{cur: noBundle, pendingF: noBundle})
	}
	return &c.threads[t]
}

func (c *coarse) varState(x int) int {
	for len(c.lastW) <= x {
		c.lastW = append(c.lastW, noBundle)
		c.lastRs = append(c.lastRs, nil)
	}
	return x
}

func (c *coarse) lock(l int) int {
	for len(c.lastRel) <= l {
		c.lastRel = append(c.lastRel, noBundle)
	}
	return l
}

// bundleFor returns the bundle of thread t, opening a new one when the
// current one is full (or absent).
func (c *coarse) bundleFor(t int) graph.NodeID {
	ts := c.thread(t)
	if ts.cur == noBundle || ts.txnsIn >= c.window {
		prev := ts.cur
		id := c.next
		c.next++
		c.det.AddNode(id)
		if prev != noBundle && c.det.HasNode(prev) {
			c.addEdge(prev, id)
		}
		if ts.pendingF != noBundle {
			if c.det.HasNode(ts.pendingF) {
				c.addEdge(ts.pendingF, id)
			}
			ts.pendingF = noBundle
		}
		ts.cur = id
		ts.txnsIn = 0
	}
	return ts.cur
}

func (c *coarse) addEdge(u, v graph.NodeID) {
	if u == v || u == noBundle || !c.det.HasNode(u) {
		return
	}
	cyc := c.det.AddEdge(u, v)
	if c.debug != nil {
		c.debug("edge", u, v, cyc != nil)
	}
	if cyc != nil {
		c.flagged = true
	}
}

// process consumes one event and reports whether a (potential) cycle was
// flagged.
//
// Note: c.threads can be reallocated by c.thread(target) in the fork/join
// cases, so thread state is always re-fetched by index rather than held in
// a pointer across calls that may grow the slice.
func (c *coarse) process(e trace.Event) bool {
	c.flagged = false
	t := int(e.Thread)
	c.thread(t)
	switch e.Kind {
	case trace.Begin:
		ts := c.thread(t)
		if ts.depth == 0 {
			c.bundleFor(t)
			ts = c.thread(t)
		}
		ts.depth++
	case trace.End:
		ts := c.thread(t)
		ts.depth--
		if ts.depth == 0 {
			ts.txnsIn++ // the transaction closes; the bundle may continue
		}
	case trace.Read:
		x := c.varState(int(e.Target))
		b := c.bundleFor(t)
		c.addEdge(c.lastW[x], b)
		for len(c.lastRs[x]) <= t {
			c.lastRs[x] = append(c.lastRs[x], noBundle)
		}
		c.lastRs[x][t] = b
		c.noteUnary(t)
	case trace.Write:
		x := c.varState(int(e.Target))
		b := c.bundleFor(t)
		c.addEdge(c.lastW[x], b)
		for _, r := range c.lastRs[x] {
			c.addEdge(r, b)
		}
		c.lastW[x] = b
		c.noteUnary(t)
	case trace.Acquire:
		l := c.lock(int(e.Target))
		b := c.bundleFor(t)
		c.addEdge(c.lastRel[l], b)
		c.noteUnary(t)
	case trace.Release:
		l := c.lock(int(e.Target))
		c.lastRel[l] = c.bundleFor(t)
		c.noteUnary(t)
	case trace.Fork:
		u := c.thread(int(e.Target))
		u.pendingF = c.bundleFor(t)
		c.noteUnary(t)
	case trace.Join:
		us := c.thread(int(e.Target))
		b := c.bundleFor(t)
		if us.cur != noBundle {
			c.addEdge(us.cur, b)
		}
		c.noteUnary(t)
	}
	return c.flagged
}

// noteUnary counts an event outside any block as a (unary) transaction, so
// that at Window=1 every unary event gets its own bundle and the bundle
// graph coincides with the transaction graph.
func (c *coarse) noteUnary(t int) {
	ts := c.thread(t)
	if ts.depth == 0 {
		ts.txnsIn++
	}
}

var _ core.Engine = (*Checker)(nil)
