// Package obs is the process-local observability plane: a lock-free
// metrics registry (counters, gauges, log-linear latency histograms)
// with Prometheus text exposition.
//
// The design splits the hot path from the read path. Instruments are
// plain atomics — recording a counter increment or a histogram
// observation takes a handful of atomic adds, no locks, no allocation —
// while the registry itself is only locked at registration time and
// during exposition. Read-through registrations (CounterFunc/GaugeFunc)
// let subsystems that already keep their own atomic counters expose
// them without double bookkeeping: the existing counter stays the
// source of truth and the registry samples it at scrape time, so the
// JSON /metrics view and the Prometheus view can never disagree about
// a value — they read the same word.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing registry-owned counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be non-negative to keep the
// counter monotone; callers own that invariant).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// entry is one registered time series: a metric name, optional
// pre-rendered label pairs, and a way to read its current value.
type entry struct {
	name    string
	labels  string // rendered `key="value",...` without braces, or ""
	help    string
	kind    metricKind
	intFn   func() int64
	floatFn func() float64
	hist    *Histogram
}

// Registry holds registered instruments and renders them in Prometheus
// text exposition format. The zero value is ready to use. Registration
// order is exposition order (series sharing a name are grouped under
// one HELP/TYPE header at the first occurrence).
type Registry struct {
	mu   sync.Mutex
	ents []*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) add(e *entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ents = append(r.ents, e)
}

// Counter registers and returns a new owned counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.CounterFunc(name, "", help, c.Value)
	return c
}

// CounterFunc registers a read-through counter sampled at exposition
// time. labels is a pre-rendered Prometheus label body (`k="v",...`) or
// empty; fn must be safe for concurrent use and monotone.
func (r *Registry) CounterFunc(name, labels, help string, fn func() int64) {
	r.add(&entry{name: name, labels: labels, help: help, kind: kindCounter, intFn: fn})
}

// GaugeFunc registers a read-through gauge sampled at exposition time.
func (r *Registry) GaugeFunc(name, labels, help string, fn func() float64) {
	r.add(&entry{name: name, labels: labels, help: help, kind: kindGauge, floatFn: fn})
}

// Histogram registers and returns a new owned histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	h := &Histogram{}
	r.RegisterHistogram(name, "", help, h)
	return h
}

// RegisterHistogram registers an existing histogram (for instruments
// that live in another subsystem, like the load harness's Hist).
func (r *Registry) RegisterHistogram(name, labels, help string, h *Histogram) {
	r.add(&entry{name: name, labels: labels, help: help, kind: kindHistogram, hist: h})
}

// Labels renders label pairs into the pre-joined form the registration
// functions take, with deterministic (sorted) key order and value
// escaping per the exposition format.
func Labels(kv map[string]string) string {
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+`="`+escapeLabel(kv[k])+`"`)
	}
	return strings.Join(parts, ",")
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered series in the Prometheus
// text exposition format (version 0.0.4): HELP/TYPE headers once per
// metric name, counters/gauges as single samples, histograms as
// cumulative non-empty `le` buckets plus `+Inf`, `_sum` (seconds) and
// `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ents := make([]*entry, len(r.ents))
	copy(ents, r.ents)
	r.mu.Unlock()

	var b strings.Builder
	seen := make(map[string]bool, len(ents))
	for _, e := range ents {
		if !seen[e.name] {
			seen[e.name] = true
			typ := "counter"
			switch e.kind {
			case kindGauge:
				typ = "gauge"
			case kindHistogram:
				typ = "histogram"
			}
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", e.name, e.help, e.name, typ)
		}
		switch e.kind {
		case kindCounter:
			writeSample(&b, e.name, e.labels, strconv.FormatInt(e.intFn(), 10))
		case kindGauge:
			writeSample(&b, e.name, e.labels, formatFloat(e.floatFn()))
		case kindHistogram:
			writeHistogram(&b, e)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSample(b *strings.Builder, name, labels, value string) {
	b.WriteString(name)
	if labels != "" {
		b.WriteString("{")
		b.WriteString(labels)
		b.WriteString("}")
	}
	b.WriteString(" ")
	b.WriteString(value)
	b.WriteString("\n")
}

// writeHistogram renders one histogram: cumulative counts at each
// non-empty bucket's inclusive upper bound (in seconds, the Prometheus
// base unit), a `+Inf` bucket, and the `_sum`/`_count` pair. The bucket
// counts and `_count` come from one sweep over the bucket array, so the
// exposition is self-consistent even while recorders run concurrently
// (`_sum` may lag by the in-flight observations; scrapers tolerate
// that, verdicts never depend on it).
func writeHistogram(b *strings.Builder, e *entry) {
	h := e.hist
	var cum int64
	for i := 0; i < histSize; i++ {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		le := formatFloat(float64(bucketUpper(i)) / 1e6)
		labels := `le="` + le + `"`
		if e.labels != "" {
			labels = e.labels + "," + labels
		}
		writeSample(b, e.name+"_bucket", labels, strconv.FormatInt(cum, 10))
	}
	infLabels := `le="+Inf"`
	if e.labels != "" {
		infLabels = e.labels + "," + infLabels
	}
	writeSample(b, e.name+"_bucket", infLabels, strconv.FormatInt(cum, 10))
	writeSample(b, e.name+"_sum", e.labels, formatFloat(float64(h.sum.Load())/1e6))
	writeSample(b, e.name+"_count", e.labels, strconv.FormatInt(cum, 10))
}
