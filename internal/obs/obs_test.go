package obs

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketsMonotone(t *testing.T) {
	prev := -1
	for v := uint64(0); v < 1<<20; v += 17 {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, i, prev)
		}
		prev = i
		if mid := bucketMid(i); bucketIndex(mid) != i {
			t.Fatalf("bucketMid(%d)=%d maps to bucket %d", i, mid, bucketIndex(mid))
		}
		if up := bucketUpper(i); bucketIndex(up) != i {
			t.Fatalf("bucketUpper(%d)=%d maps to bucket %d", i, up, bucketIndex(up))
		}
		if up, mid := bucketUpper(i), bucketMid(i); up < mid {
			t.Fatalf("bucket %d: upper %d < mid %d", i, up, mid)
		}
	}
	// The upper bound really is an upper bound: the next value starts the
	// next bucket.
	for i := 0; i < histSize-1; i++ {
		if bucketIndex(bucketUpper(i)+1) <= i {
			t.Fatalf("bucketUpper(%d)+1 still maps to bucket %d", i, i)
		}
	}
}

func TestHistogramSum(t *testing.T) {
	var h Histogram
	h.Record(2 * time.Millisecond)
	h.Record(3 * time.Millisecond)
	if got, want := h.Sum(), 5*time.Millisecond; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
}

// TestConcurrentHammer drives every instrument kind from N goroutines;
// under -race this pins the lock-free claim, and the totals pin that no
// increment is lost.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_ops_total", "ops")
	h := r.Histogram("hammer_latency_seconds", "latency")
	const goroutines, perG = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Record(time.Duration(g*perG+i) * time.Microsecond)
				if i%100 == 0 {
					// Exposition concurrent with recording must not race.
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

// TestSnapshotMonotonicity pins that repeated expositions of a counter
// and a histogram under concurrent writers never go backwards.
func TestSnapshotMonotonicity(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mono_total", "monotone counter")
	h := r.Histogram("mono_seconds", "monotone histogram")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.Inc()
				h.Record(time.Millisecond)
			}
		}
	}()
	var lastC, lastH int64
	for i := 0; i < 200; i++ {
		text := promText(t, r)
		cv := promValue(t, text, "mono_total")
		hv := promValue(t, text, "mono_seconds_count")
		if cv < lastC {
			t.Fatalf("counter went backwards: %d then %d", lastC, cv)
		}
		if hv < lastH {
			t.Fatalf("histogram count went backwards: %d then %d", lastH, hv)
		}
		lastC, lastH = cv, hv
	}
	close(stop)
	wg.Wait()
	// Quantiles are monotone in q.
	prev := 0.0
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%v)=%v < Quantile at lower q %v", q, v, prev)
		}
		prev = v
	}
}

// TestPrometheusExposition parses the rendered text back and
// cross-checks every sample against the live instruments.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests served")
	c.Add(42)
	r.CounterFunc("readthrough_total", Labels(map[string]string{"backend": `http://b"0`}), "read-through", func() int64 { return 7 })
	r.GaugeFunc("uptime_seconds", "", "uptime", func() float64 { return 1.5 })
	h := r.Histogram("stage_seconds", "stage latency")
	for _, d := range []time.Duration{time.Millisecond, time.Millisecond, 20 * time.Millisecond, 3 * time.Second} {
		h.Record(d)
	}

	text := promText(t, r)
	samples, types := parseProm(t, text)

	if types["requests_total"] != "counter" || types["readthrough_total"] != "counter" {
		t.Fatalf("counter TYPE lines wrong: %v", types)
	}
	if types["uptime_seconds"] != "gauge" || types["stage_seconds"] != "histogram" {
		t.Fatalf("gauge/histogram TYPE lines wrong: %v", types)
	}
	if got := samples["requests_total"]; got != 42 {
		t.Fatalf("requests_total = %v", got)
	}
	if got := samples[`readthrough_total{backend="http://b\"0"}`]; got != 7 {
		t.Fatalf("labeled read-through = %v (samples %v)", got, samples)
	}
	if got := samples["uptime_seconds"]; got != 1.5 {
		t.Fatalf("uptime_seconds = %v", got)
	}
	if got := samples["stage_seconds_count"]; got != float64(h.Count()) {
		t.Fatalf("_count = %v, live %d", got, h.Count())
	}
	if got, want := samples["stage_seconds_sum"], h.Sum().Seconds(); got < want*0.999 || got > want*1.001 {
		t.Fatalf("_sum = %v, live %v", got, want)
	}
	if got := samples[`stage_seconds_bucket{le="+Inf"}`]; got != float64(h.Count()) {
		t.Fatalf("+Inf bucket = %v, live %d", got, h.Count())
	}

	// Bucket cumulative counts are non-decreasing in le and end at count.
	type bkt struct{ le, cum float64 }
	var buckets []bkt
	for line, v := range samples {
		if !strings.HasPrefix(line, "stage_seconds_bucket{le=") || strings.Contains(line, "+Inf") {
			continue
		}
		le, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(line, `stage_seconds_bucket{le="`), `"}`), 64)
		if err != nil {
			t.Fatalf("bad le in %q: %v", line, err)
		}
		buckets = append(buckets, bkt{le, v})
	}
	if len(buckets) == 0 {
		t.Fatal("no non-Inf buckets emitted for a non-empty histogram")
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	for i := 1; i < len(buckets); i++ {
		if buckets[i].cum < buckets[i-1].cum {
			t.Fatalf("cumulative bucket counts decrease: %v", buckets)
		}
	}
	if last := buckets[len(buckets)-1].cum; last != float64(h.Count()) {
		t.Fatalf("last bucket cum %v ≠ count %d", last, h.Count())
	}
}

func promText(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// parseProm is a minimal exposition-format parser: it validates the
// line grammar (HELP/TYPE comments, `name{labels} value` samples) and
// returns samples keyed by their full series string plus TYPE by name.
func parseProm(t *testing.T, text string) (map[string]float64, map[string]string) {
	t.Helper()
	samples := map[string]float64{}
	types := map[string]string{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment %q", line)
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		samples[line[:i]] = v
	}
	return samples, types
}

func promValue(t *testing.T, text, series string) int64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, series+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, series+" "), 64)
			if err != nil {
				t.Fatalf("bad value in %q: %v", line, err)
			}
			return int64(v)
		}
	}
	t.Fatalf("series %q not found in:\n%s", series, text)
	return 0
}
