package obs

// Histogram is an HDR-style log-linear latency histogram: microsecond
// values bucketed exactly below 64µs and with 32 sub-buckets per octave
// above, bounding relative quantile error at ~3% while keeping the
// whole structure a fixed array of atomics — recorders run concurrently
// with no locks and no allocation, so the measurement cannot perturb
// the tail it reports. It began life as the load harness's latency
// histogram (internal/loadgen re-exports it as Hist) and now also backs
// the server's per-stage latency metrics, where the same property —
// recording on the request path must cost nanoseconds — holds.

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// histSubBits is log2 of the sub-buckets per octave.
	histSubBits = 5
	// histLinear is the exact-count region: values below it get their own
	// bucket.
	histLinear = 1 << (histSubBits + 1)
	// histSize covers ~2^36 µs (≈ 19 hours) before clamping to the last
	// bucket — far past any latency this process can observe.
	histSize = 1024
)

// Histogram buckets microsecond values. The zero value is ready to use.
type Histogram struct {
	counts [histSize]atomic.Int64
	total  atomic.Int64
	// sum accumulates recorded microseconds, so Prometheus exposition
	// can report the conventional _sum/_count pair (and consumers can
	// derive exact means, which quantile midpoints alone cannot give).
	sum atomic.Int64
}

// bucketIndex maps a microsecond value to its bucket: identity below
// histLinear, then octave*32 + top-6-bits above, which lines up exactly
// with the linear region (v=63 → 63, v=64 → 64).
func bucketIndex(v uint64) int {
	if v < histLinear {
		return int(v)
	}
	exp := uint(bits.Len64(v)) - (histSubBits + 1)
	i := int(exp)<<histSubBits + int(v>>exp)
	if i >= histSize {
		return histSize - 1
	}
	return i
}

// bucketMid returns a representative (midpoint) value for a bucket.
func bucketMid(i int) uint64 {
	if i < histLinear {
		return uint64(i)
	}
	exp := uint(i>>histSubBits) - 1
	m := uint64(i) - uint64(exp)<<histSubBits
	return m<<exp + 1<<exp/2
}

// bucketUpper returns the largest microsecond value a bucket can hold —
// the inclusive upper bound Prometheus `le` labels want.
func bucketUpper(i int) uint64 {
	if i < histLinear {
		return uint64(i)
	}
	exp := uint(i>>histSubBits) - 1
	m := uint64(i) - uint64(exp)<<histSubBits
	return (m+1)<<exp - 1
}

// Record adds one latency observation.
func (h *Histogram) Record(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	h.counts[bucketIndex(uint64(us))].Add(1)
	h.total.Add(1)
	h.sum.Add(us)
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the total recorded latency.
func (h *Histogram) Sum() time.Duration {
	return time.Duration(h.sum.Load()) * time.Microsecond
}

// Quantile returns the q-quantile (0 < q ≤ 1) in milliseconds, or 0
// with no observations. Concurrent Records move the answer by at most
// the in-flight observations; callers quiesce workers before reading.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for i := 0; i < histSize; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			return float64(bucketMid(i)) / 1e3
		}
	}
	return float64(bucketMid(histSize-1)) / 1e3
}
