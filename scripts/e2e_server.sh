#!/usr/bin/env bash
# End-to-end smoke of the real aerodromed binary, as CI runs it: build,
# boot on an ephemeral port, replay golden traces over HTTP (verdicts must
# match the local CLI byte for byte), exercise the session API with curl,
# then SIGTERM and require a clean drain within the deadline. Then the
# sharded topology: a router over two backends, golden replay through the
# router, a killed backend (orphaned sessions answer 409, the survivor
# keeps feeding) and a clean drain of the survivors.
set -euo pipefail
cd "$(dirname "$0")/.."

BINDIR=$(mktemp -d)
BIN="$BINDIR/aerodromed"
TMPDIR_E2E=$(mktemp -d)
PIDS=()
trap 'for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done; rm -rf "$BINDIR" "$TMPDIR_E2E"' EXIT

go build -o "$BIN" ./cmd/aerodromed

# boot_daemon LOGFILE ARGS... — starts an aerodromed in this shell (so
# `wait` works) and leaves its pid/address in BOOT_PID/BOOT_ADDR.
boot_daemon() {
    local log="$1"; shift
    "$BIN" "$@" >"$log" 2>&1 &
    BOOT_PID=$!
    PIDS+=("$BOOT_PID")
    BOOT_ADDR=
    for _ in $(seq 1 100); do
        BOOT_ADDR=$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$log" | head -1)
        [ -n "$BOOT_ADDR" ] && break
        kill -0 "$BOOT_PID" 2>/dev/null || { echo "daemon died:"; cat "$log"; exit 1; }
        sleep 0.1
    done
    [ -n "$BOOT_ADDR" ] || { echo "daemon never became ready:"; cat "$log"; exit 1; }
}

# await_exit PID LOGFILE NAME — SIGTERM already sent; require exit 0 and a
# clean-drain log line within the deadline.
await_exit() {
    local pid="$1" log="$2" name="$3"
    for _ in $(seq 1 100); do
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.1
    done
    if kill -0 "$pid" 2>/dev/null; then
        echo "$name did not exit within 10s of SIGTERM"; cat "$log"; exit 1
    fi
    set +e; wait "$pid"; local code=$?; set -e
    [ "$code" -eq 0 ] || { echo "$name exited $code after SIGTERM:"; cat "$log"; exit 1; }
    grep -q "drained cleanly" "$log" || { echo "no clean-drain log for $name:"; cat "$log"; exit 1; }
}

LOG="$TMPDIR_E2E/single.log"
boot_daemon "$LOG" -addr 127.0.0.1:0 -session-ttl 1m
PID=$BOOT_PID ADDR=$BOOT_ADDR
BASE="http://$ADDR"
echo "daemon up at $BASE"

curl -fsS "$BASE/healthz" | grep -q '"ok"' || { echo "healthz failed"; exit 1; }

# Golden replay over HTTP: the remote CLI verdict must match the local
# one on verdict, violation index and check kind (the local renderer has
# symbol names the wire format deliberately does not carry).
normalize() {
    printf '%s\n' "$1" | sed -E \
        -e 's/^(result: (NOT )?conflict serializable).*/\1/' \
        -e "s/\$/ $(printf '%s' "$2" | grep -oE 'at event [0-9]+' || true)/" \
        -e "s/\$/ $(printf '%s' "$2" | grep -oE '[a-z]+-[a-z-]+ check' || true)/"
}
for trace in sharded-none sharded-cross chain-lock phase-delayed; do
    f="testdata/golden/$trace.std"
    local_out=$(go run ./cmd/aerodrome -q -algo auto "$f" 2>/dev/null || true)
    remote_out=$(go run ./cmd/aerodrome -q -algo auto -remote "$BASE" "$f" 2>/dev/null || true)
    local_norm=$(normalize "$local_out" "$local_out")
    remote_norm=$(normalize "$remote_out" "$remote_out")
    if [ "$local_norm" != "$remote_norm" ]; then
        echo "verdict mismatch on $trace:"
        echo "  local:  $local_out"
        echo "  remote: $remote_out"
        exit 1
    fi
    echo "golden $trace: verdicts agree ($local_norm)"
done

# Raw curl check: the wire format is plain HTTP + JSON.
curl -fsS --data-binary @testdata/golden/sharded-cross.std "$BASE/v1/check" \
    | grep -q '"serializable":false' || { echo "curl check failed"; exit 1; }

# Session API with curl: create, feed two chunks (split mid-line), final report.
SID=$(curl -fsS -X POST "$BASE/v1/sessions" | sed 's/.*"id":"\([^"]*\)".*/\1/')
printf 't1|begin|0\nt1|w(' | curl -fsS --data-binary @- "$BASE/v1/sessions/$SID/events" >/dev/null
printf 'x)|1\nt1|end|0\n'  | curl -fsS --data-binary @- "$BASE/v1/sessions/$SID/events" >/dev/null
curl -fsS -X DELETE "$BASE/v1/sessions/$SID" \
    | grep -q '"serializable":true.*"events":3\|"events":3.*"serializable":true' \
    || { echo "session flow failed"; exit 1; }
echo "session flow ok"

curl -fsS "$BASE/metrics" | grep -q '"events_total"' || { echo "metrics failed"; exit 1; }

# Graceful-shutdown drain check: SIGTERM must exit 0 within the deadline.
kill -TERM "$PID"
await_exit "$PID" "$LOG" "daemon"
echo "graceful drain ok"

# ---- Sharded topology: router + two backends -------------------------------

LOG_B0="$TMPDIR_E2E/backend0.log"
LOG_B1="$TMPDIR_E2E/backend1.log"
LOG_RT="$TMPDIR_E2E/router.log"
boot_daemon "$LOG_B0" -addr 127.0.0.1:0
PID_B0=$BOOT_PID ADDR_B0=$BOOT_ADDR
boot_daemon "$LOG_B1" -addr 127.0.0.1:0
PID_B1=$BOOT_PID ADDR_B1=$BOOT_ADDR
boot_daemon "$LOG_RT" -shard \
    -backends "http://$ADDR_B0,http://$ADDR_B1" -probe-interval 100ms -addr 127.0.0.1:0
PID_RT=$BOOT_PID ADDR_RT=$BOOT_ADDR
RBASE="http://$ADDR_RT"
echo "router up at $RBASE over http://$ADDR_B0 and http://$ADDR_B1"

curl -fsS "$RBASE/healthz" | grep -q '"backends_healthy":2' \
    || { echo "router healthz failed"; curl -sS "$RBASE/healthz"; exit 1; }

# Golden replay through the router: verdicts must match the local CLI,
# exactly as for the single daemon.
for trace in sharded-none sharded-cross; do
    f="testdata/golden/$trace.std"
    local_out=$(go run ./cmd/aerodrome -q -algo auto "$f" 2>/dev/null || true)
    remote_out=$(go run ./cmd/aerodrome -q -algo auto -remote "$RBASE" -trace "$trace" "$f" 2>/dev/null || true)
    local_norm=$(normalize "$local_out" "$local_out")
    remote_norm=$(normalize "$remote_out" "$remote_out")
    if [ "$local_norm" != "$remote_norm" ]; then
        echo "routed verdict mismatch on $trace:"
        echo "  local:  $local_out"
        echo "  remote: $remote_out"
        exit 1
    fi
    echo "routed golden $trace: verdicts agree ($local_norm)"
done

# Open keyed sessions until both backends hold one (the ring splits keys;
# a handful of attempts suffices). Remember one session per backend.
SID_B0= SID_B1= KEY_B0= KEY_B1=
for i in $(seq 1 32); do
    HDRS="$TMPDIR_E2E/create-$i.hdrs"
    SID=$(curl -fsS -D "$HDRS" -X POST "$RBASE/v1/sessions?trace=key-$i" \
        | sed 's/.*"id":"\([^"]*\)".*/\1/')
    BACKEND=$(tr -d '\r' <"$HDRS" | sed -n 's/^[Xx]-[Aa]erodrome-[Bb]ackend: *//p' | head -1)
    case "$BACKEND" in
        "http://$ADDR_B0") [ -n "$SID_B0" ] || { SID_B0=$SID; KEY_B0="key-$i"; } ;;
        "http://$ADDR_B1") [ -n "$SID_B1" ] || { SID_B1=$SID; KEY_B1="key-$i"; } ;;
        *) echo "unexpected backend header '$BACKEND'"; exit 1 ;;
    esac
    [ -n "$SID_B0" ] && [ -n "$SID_B1" ] && break
done
[ -n "$SID_B0" ] && [ -n "$SID_B1" ] || { echo "sessions never landed on both backends"; exit 1; }
echo "sessions placed: $SID_B0 on backend0, $SID_B1 on backend1"

# Kill backend0 hard (no drain — this is the failure case) and wait for
# the router's prober to notice.
kill -9 "$PID_B0"
for _ in $(seq 1 100); do
    curl -fsS "$RBASE/healthz" 2>/dev/null | grep -q '"backends_healthy":1' && break
    sleep 0.1
done
curl -fsS "$RBASE/healthz" | grep -q '"backends_healthy":1' \
    || { echo "router never noticed the dead backend"; exit 1; }

# The orphaned session answers 409 (affinity lost), the survivor's keeps
# feeding, and new sessions are still admitted (failover placement).
CODE=$(printf 't9|begin|0\n' | curl -s -o /dev/null -w '%{http_code}' \
    --data-binary @- -H "X-Aerodrome-Trace: $KEY_B0" "$RBASE/v1/sessions/$SID_B0/events")
[ "$CODE" = "409" ] || { echo "orphaned session feed: HTTP $CODE, want 409"; exit 1; }
printf 't9|begin|0\nt9|w(y)|1\nt9|end|0\n' | curl -fsS --data-binary @- \
    -H "X-Aerodrome-Trace: $KEY_B1" "$RBASE/v1/sessions/$SID_B1/events" >/dev/null \
    || { echo "surviving session feed failed"; exit 1; }
curl -fsS -X POST "$RBASE/v1/sessions?trace=failover" >/dev/null \
    || { echo "create after backend loss failed"; exit 1; }
echo "backend loss: 409 on orphan, survivor feeds, creates fail over"

# Drain the survivors: the router and the surviving backend (with its live
# session) must both exit 0 with a clean-drain log on SIGTERM.
kill -TERM "$PID_RT"
await_exit "$PID_RT" "$LOG_RT" "router"
kill -TERM "$PID_B1"
await_exit "$PID_B1" "$LOG_B1" "backend1"
echo "sharded drain ok"
echo "e2e: all checks passed"
