#!/usr/bin/env bash
# End-to-end smoke of the real aerodromed binary, as CI runs it.
#
#   scripts/e2e_server.sh [single|sharded|chaos|load|all]   (default: all)
#
# single  — build, boot on an ephemeral port, replay golden traces over
#           HTTP (verdicts must match the local CLI byte for byte),
#           exercise the session API with curl, then SIGTERM and require
#           a clean drain within the deadline.
# sharded — a router over two backends: golden replay through the
#           router, then a kill -9'd backend mid-session. The orphaned
#           session must KEEP FEEDING — the router replays its journal
#           onto the survivor — and its final verdict must match the
#           local CLI. Clean drain of the survivors.
# chaos   — a router (with -chaos fault injection on its backend path)
#           over three backends, hammered by concurrent incremental CLI
#           replays. kill -9 a backend mid-stream, then kill -9 the
#           router itself and restart it on the same port. Every keyed
#           session must finish with a verdict identical to the local
#           sequential check; zero hard failures allowed.
# load    — open-loop load smoke: a router over two budget-limited
#           backends driven by `experiments -run load` with the
#           burst-smoke scenario. The run must finish with zero hard
#           failures (verdicts pinned to the local checker inside the
#           harness), emit a load-* BENCH row, and report a sane p99.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-all}"

BINDIR=$(mktemp -d)
BIN="$BINDIR/aerodromed"
CLI="$BINDIR/aerodrome"
TMPDIR_E2E=$(mktemp -d)
# Where daemon logs land when a leg fails: CI uploads this directory as
# an artifact, so a red leg ships the router/backend logs that explain it
# instead of just the curl error that tripped it.
ARTIFACT_DIR="${E2E_LOG_DIR:-$PWD/e2e-logs}"
PIDS=()
# Hardened cleanup: the chaos leg kill -9s daemons mid-stream, so any
# survivor may be wedged mid-write — SIGKILL everything we ever started
# (idempotent on the already-dead), reap, then sweep the temp dirs. On a
# failing exit, first dump every captured daemon log to stdout and
# preserve a copy under $ARTIFACT_DIR for CI upload.
cleanup() {
    local code=$?
    for p in "${PIDS[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
    if [ "$code" -ne 0 ]; then
        echo "=== e2e leg failed (exit $code): captured daemon logs follow ==="
        local log
        for log in "$TMPDIR_E2E"/*.log; do
            [ -f "$log" ] || continue
            echo "---- ${log##*/} ----"
            cat "$log"
        done
        mkdir -p "$ARTIFACT_DIR"
        cp "$TMPDIR_E2E"/*.log "$ARTIFACT_DIR"/ 2>/dev/null || true
        echo "=== daemon logs preserved in $ARTIFACT_DIR ==="
    fi
    rm -rf "$BINDIR" "$TMPDIR_E2E"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/aerodromed
go build -o "$CLI" ./cmd/aerodrome

# boot_daemon LOGFILE ARGS... — starts an aerodromed in this shell (so
# `wait` works) and leaves its pid/address in BOOT_PID/BOOT_ADDR.
boot_daemon() {
    local log="$1"; shift
    "$BIN" "$@" >"$log" 2>&1 &
    BOOT_PID=$!
    PIDS+=("$BOOT_PID")
    BOOT_ADDR=
    for _ in $(seq 1 100); do
        BOOT_ADDR=$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$log" | head -1)
        [ -n "$BOOT_ADDR" ] && break
        kill -0 "$BOOT_PID" 2>/dev/null || { echo "daemon died:"; cat "$log"; exit 1; }
        sleep 0.1
    done
    [ -n "$BOOT_ADDR" ] || { echo "daemon never became ready:"; cat "$log"; exit 1; }
}

# await_exit PID LOGFILE NAME — SIGTERM already sent; require exit 0 and a
# clean-drain log line within the deadline.
await_exit() {
    local pid="$1" log="$2" name="$3"
    for _ in $(seq 1 100); do
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.1
    done
    if kill -0 "$pid" 2>/dev/null; then
        echo "$name did not exit within 10s of SIGTERM"; cat "$log"; exit 1
    fi
    set +e; wait "$pid"; local code=$?; set -e
    [ "$code" -eq 0 ] || { echo "$name exited $code after SIGTERM:"; cat "$log"; exit 1; }
    grep -q "drained cleanly" "$log" || { echo "no clean-drain log for $name:"; cat "$log"; exit 1; }
}

# normalize OUT OUT — strip the local renderer's symbol names (the wire
# format deliberately does not carry them) down to verdict, violation
# index and check kind, so local and remote CLI output compare equal.
normalize() {
    printf '%s\n' "$1" | sed -E \
        -e 's/^(result: (NOT )?conflict serializable).*/\1/' \
        -e "s/\$/ $(printf '%s' "$2" | grep -oE 'at event [0-9]+' || true)/" \
        -e "s/\$/ $(printf '%s' "$2" | grep -oE '[a-z]+-[a-z-]+ check' || true)/"
}

# ---- single: one daemon, golden replay, session API, clean drain -----------

leg_single() {
    local LOG="$TMPDIR_E2E/single.log"
    boot_daemon "$LOG" -addr 127.0.0.1:0 -session-ttl 1m
    local PID=$BOOT_PID ADDR=$BOOT_ADDR
    local BASE="http://$ADDR"
    echo "daemon up at $BASE"

    curl -fsS "$BASE/healthz" | grep -q '"ok"' || { echo "healthz failed"; exit 1; }

    # Golden replay over HTTP: the remote CLI verdict must match the local
    # one on verdict, violation index and check kind.
    local trace f local_out remote_out local_norm remote_norm
    for trace in sharded-none sharded-cross chain-lock phase-delayed; do
        f="testdata/golden/$trace.std"
        local_out=$("$CLI" -q -algo auto "$f" 2>/dev/null || true)
        remote_out=$("$CLI" -q -algo auto -remote "$BASE" "$f" 2>/dev/null || true)
        local_norm=$(normalize "$local_out" "$local_out")
        remote_norm=$(normalize "$remote_out" "$remote_out")
        if [ "$local_norm" != "$remote_norm" ]; then
            echo "verdict mismatch on $trace:"
            echo "  local:  $local_out"
            echo "  remote: $remote_out"
            exit 1
        fi
        echo "golden $trace: verdicts agree ($local_norm)"
    done

    # Raw curl check: the wire format is plain HTTP + JSON.
    curl -fsS --data-binary @testdata/golden/sharded-cross.std "$BASE/v1/check" \
        | grep -q '"serializable":false' || { echo "curl check failed"; exit 1; }

    # Session API with curl: create, feed two chunks (split mid-line), final report.
    local SID
    SID=$(curl -fsS -X POST "$BASE/v1/sessions" | sed 's/.*"id":"\([^"]*\)".*/\1/')
    printf 't1|begin|0\nt1|w(' | curl -fsS --data-binary @- "$BASE/v1/sessions/$SID/events" >/dev/null
    printf 'x)|1\nt1|end|0\n'  | curl -fsS --data-binary @- "$BASE/v1/sessions/$SID/events" >/dev/null
    curl -fsS -X DELETE "$BASE/v1/sessions/$SID" \
        | grep -q '"serializable":true.*"events":3\|"events":3.*"serializable":true' \
        || { echo "session flow failed"; exit 1; }
    echo "session flow ok"

    # Dual-analysis session: one event stream, two verdicts. The trace
    # violates atomicity early (t2's locked write splits t1's transaction)
    # while the data race on z only appears at the very end — so the
    # session must keep consuming after the atomicity latch, and the final
    # report must carry both per-analysis entries.
    local DREP
    SID=$(curl -fsS -X POST -H 'Content-Type: application/json' \
        -d '{"analyses":["atomicity","hbrace"]}' "$BASE/v1/sessions" \
        | sed 's/.*"id":"\([^"]*\)".*/\1/')
    printf 't1|begin|0\nt1|acq(l)|0\nt1|r(x)|0\nt1|rel(l)|0\nt2|acq(l)|0\nt2|w(x)|0\nt2|rel(l)|0\n' \
        | curl -fsS --data-binary @- "$BASE/v1/sessions/$SID/events" >/dev/null
    printf 't1|acq(l)|0\nt1|w(x)|0\nt1|rel(l)|0\nt1|end|0\nt2|w(z)|0\nt3|w(z)|0\n' \
        | curl -fsS --data-binary @- "$BASE/v1/sessions/$SID/events" >/dev/null
    DREP=$(curl -fsS -X DELETE "$BASE/v1/sessions/$SID")
    echo "$DREP" | grep -q '"serializable":false' \
        || { echo "dual session: no atomicity violation: $DREP"; exit 1; }
    echo "$DREP" | grep -q '"analysis":"atomicity"' \
        || { echo "dual session: no atomicity entry: $DREP"; exit 1; }
    echo "$DREP" | grep -q '"analysis":"hbrace"' \
        || { echo "dual session: no hbrace entry: $DREP"; exit 1; }
    echo "$DREP" | grep -q '"check":"write-write"' \
        || { echo "dual session: no write-write race verdict: $DREP"; exit 1; }
    echo "dual-analysis session ok"

    curl -fsS "$BASE/metrics" | grep -q '"events_total"' || { echo "metrics failed"; exit 1; }

    # Request-ID contract: a client-supplied ID is echoed verbatim; an
    # absent one is generated at the edge.
    local RID
    RID=$(curl -fsS -D - -o /dev/null -H "X-Aerodrome-Request-Id: e2e-single-rid" "$BASE/healthz" \
        | tr -d '\r' | sed -n 's/^[Xx]-[Aa]erodrome-[Rr]equest-[Ii]d: *//p' | head -1)
    [ "$RID" = "e2e-single-rid" ] || { echo "request id not echoed (got '$RID')"; exit 1; }
    RID=$(curl -fsS -D - -o /dev/null "$BASE/healthz" \
        | tr -d '\r' | sed -n 's/^[Xx]-[Aa]erodrome-[Rr]equest-[Ii]d: *//p' | head -1)
    [ -n "$RID" ] || { echo "no request id generated at the edge"; exit 1; }
    echo "request-id contract ok"

    # Observability surface: the JSON /metrics answers per-stage latency
    # quantiles and engine introspection; ?format=prom exposes the same
    # series as Prometheus text with non-zero stage counts.
    local METRICS PROM
    METRICS=$(curl -fsS "$BASE/metrics")
    echo "$METRICS" | grep -q '"stages"' || { echo "no stages section in metrics"; exit 1; }
    echo "$METRICS" | grep -q '"p99_ms"' || { echo "no stage p99 in metrics"; exit 1; }
    echo "$METRICS" | grep -q '"epoch_hits"' || { echo "no engine counters in metrics"; exit 1; }
    echo "$METRICS" | grep -q '"epoch_hit_rate"' || { echo "no epoch hit rate in metrics"; exit 1; }
    PROM=$(curl -fsS "$BASE/metrics?format=prom")
    echo "$PROM" | grep -q '^# TYPE aerodromed_stage_duration_seconds histogram' \
        || { echo "no prom stage histogram"; exit 1; }
    echo "$PROM" | grep -Eq '^aerodromed_stage_duration_seconds_count\{stage="check"\} [1-9]' \
        || { echo "prom check-stage count never incremented"; exit 1; }
    echo "$PROM" | grep -Eq '^aerodromed_events_total [1-9]' \
        || { echo "prom events_total missing"; exit 1; }
    echo "observability surface ok"

    # Graceful-shutdown drain check: SIGTERM must exit 0 within the deadline.
    kill -TERM "$PID"
    await_exit "$PID" "$LOG" "daemon"
    echo "graceful drain ok"
}

# ---- sharded: router + two backends, journaled failover --------------------

leg_sharded() {
    local LOG_B0="$TMPDIR_E2E/backend0.log"
    local LOG_B1="$TMPDIR_E2E/backend1.log"
    local LOG_RT="$TMPDIR_E2E/router.log"
    boot_daemon "$LOG_B0" -addr 127.0.0.1:0
    local PID_B0=$BOOT_PID ADDR_B0=$BOOT_ADDR
    boot_daemon "$LOG_B1" -addr 127.0.0.1:0
    local PID_B1=$BOOT_PID ADDR_B1=$BOOT_ADDR
    boot_daemon "$LOG_RT" -shard \
        -backends "http://$ADDR_B0,http://$ADDR_B1" -probe-interval 100ms -addr 127.0.0.1:0
    local PID_RT=$BOOT_PID ADDR_RT=$BOOT_ADDR
    local RBASE="http://$ADDR_RT"
    echo "router up at $RBASE over http://$ADDR_B0 and http://$ADDR_B1"

    curl -fsS "$RBASE/healthz" | grep -q '"backends_healthy":2' \
        || { echo "router healthz failed"; curl -sS "$RBASE/healthz"; exit 1; }

    # Golden replay through the router: verdicts must match the local CLI,
    # exactly as for the single daemon.
    local trace f local_out remote_out local_norm remote_norm
    for trace in sharded-none sharded-cross; do
        f="testdata/golden/$trace.std"
        local_out=$("$CLI" -q -algo auto "$f" 2>/dev/null || true)
        remote_out=$("$CLI" -q -algo auto -remote "$RBASE" -trace "$trace" "$f" 2>/dev/null || true)
        local_norm=$(normalize "$local_out" "$local_out")
        remote_norm=$(normalize "$remote_out" "$remote_out")
        if [ "$local_norm" != "$remote_norm" ]; then
            echo "routed verdict mismatch on $trace:"
            echo "  local:  $local_out"
            echo "  remote: $remote_out"
            exit 1
        fi
        echo "routed golden $trace: verdicts agree ($local_norm)"
    done

    # Request-ID round trip through the sharded topology: an ID supplied
    # at the router edge is echoed on the response AND shows up on the
    # backend's own access log — the proxied hop carried the header.
    local RID
    RID=$(curl -fsS -D - -o /dev/null -H "X-Aerodrome-Request-Id: e2e-sharded-rid" \
        --data-binary @testdata/golden/sharded-none.std "$RBASE/v1/check" \
        | tr -d '\r' | sed -n 's/^[Xx]-[Aa]erodrome-[Rr]equest-[Ii]d: *//p' | head -1)
    [ "$RID" = "e2e-sharded-rid" ] || { echo "routed request id not echoed (got '$RID')"; exit 1; }
    grep -q 'id=e2e-sharded-rid' "$LOG_B0" "$LOG_B1" \
        || { echo "request id never reached a backend access log"; exit 1; }
    echo "request-id propagated router -> backend"

    # Open keyed sessions until both backends hold one (the ring splits keys;
    # a handful of attempts suffices). Remember one session per backend.
    local SID_B0= SID_B1= KEY_B0= KEY_B1= HDRS SID BACKEND i
    for i in $(seq 1 32); do
        HDRS="$TMPDIR_E2E/create-$i.hdrs"
        SID=$(curl -fsS -D "$HDRS" -X POST "$RBASE/v1/sessions?trace=key-$i" \
            | sed 's/.*"id":"\([^"]*\)".*/\1/')
        BACKEND=$(tr -d '\r' <"$HDRS" | sed -n 's/^[Xx]-[Aa]erodrome-[Bb]ackend: *//p' | head -1)
        case "$BACKEND" in
            "http://$ADDR_B0") [ -n "$SID_B0" ] || { SID_B0=$SID; KEY_B0="key-$i"; } ;;
            "http://$ADDR_B1") [ -n "$SID_B1" ] || { SID_B1=$SID; KEY_B1="key-$i"; } ;;
            *) echo "unexpected backend header '$BACKEND'"; exit 1 ;;
        esac
        [ -n "$SID_B0" ] && [ -n "$SID_B1" ] && break
    done
    [ -n "$SID_B0" ] && [ -n "$SID_B1" ] || { echo "sessions never landed on both backends"; exit 1; }
    echo "sessions placed: $SID_B0 on backend0, $SID_B1 on backend1"

    # Feed the backend0 session BEFORE the kill: these bytes exist only in
    # that backend's engine and the router's journal.
    printf 't1|begin|0\nt1|w(x)|1\n' | curl -fsS --data-binary @- \
        -H "X-Aerodrome-Trace: $KEY_B0" -H "X-Aerodrome-Chunk-Seq: 0" \
        "$RBASE/v1/sessions/$SID_B0/events" >/dev/null \
        || { echo "pre-kill feed failed"; exit 1; }

    # Kill backend0 hard (no drain — this is the failure case) and wait for
    # the router's prober to notice.
    kill -9 "$PID_B0"
    for _ in $(seq 1 100); do
        curl -fsS "$RBASE/healthz" 2>/dev/null | grep -q '"backends_healthy":1' && break
        sleep 0.1
    done
    curl -fsS "$RBASE/healthz" | grep -q '"backends_healthy":1' \
        || { echo "router never noticed the dead backend"; exit 1; }

    # The orphaned session must KEEP FEEDING: the router recreates it on the
    # survivor and replays the journal, transparently, inside this request.
    local CODE
    CODE=$(printf 't1|end|0\n' | curl -s -o /dev/null -w '%{http_code}' \
        --data-binary @- -H "X-Aerodrome-Trace: $KEY_B0" -H "X-Aerodrome-Chunk-Seq: 1" \
        "$RBASE/v1/sessions/$SID_B0/events")
    [ "$CODE" = "200" ] || { echo "failover feed: HTTP $CODE, want 200"; cat "$LOG_RT"; exit 1; }

    # Verdict continuity: the failed-over session's report covers ALL its
    # events, including the ones fed before the kill.
    curl -fsS -X DELETE -H "X-Aerodrome-Trace: $KEY_B0" "$RBASE/v1/sessions/$SID_B0" \
        | grep -q '"serializable":true.*"events":3\|"events":3.*"serializable":true' \
        || { echo "failed-over session report wrong"; exit 1; }

    # The survivor's own session keeps feeding, and new sessions are still
    # admitted (failover placement).
    printf 't9|begin|0\nt9|w(y)|1\nt9|end|0\n' | curl -fsS --data-binary @- \
        -H "X-Aerodrome-Trace: $KEY_B1" "$RBASE/v1/sessions/$SID_B1/events" >/dev/null \
        || { echo "surviving session feed failed"; exit 1; }
    curl -fsS -X POST "$RBASE/v1/sessions?trace=failover" >/dev/null \
        || { echo "create after backend loss failed"; exit 1; }

    # The failover left its fingerprints in the metrics.
    local METRICS
    METRICS=$(curl -fsS "$RBASE/metrics")
    echo "$METRICS" | grep -q '"failovers_total":[1-9]' \
        || { echo "no failover counted: $METRICS"; exit 1; }
    echo "$METRICS" | grep -q '"replayed_bytes_total":[1-9]' \
        || { echo "no journal bytes replayed: $METRICS"; exit 1; }
    echo "backend loss: orphan fed through failover, survivor feeds, creates rebalance"

    # The same story told in Prometheus text: failover and replay counters
    # plus the router's stage histograms, straight off the scrape endpoint.
    local PROM
    PROM=$(curl -fsS "$RBASE/metrics?format=prom")
    echo "$PROM" | grep -Eq '^aerodromed_router_failovers_total [1-9]' \
        || { echo "prom router failover counter missing"; exit 1; }
    echo "$PROM" | grep -q '^# TYPE aerodromed_router_stage_duration_seconds histogram' \
        || { echo "no prom router stage histogram"; exit 1; }
    echo "$PROM" | grep -Eq '^aerodromed_router_stage_duration_seconds_count\{stage="proxy"\} [1-9]' \
        || { echo "prom proxy-stage count never incremented"; exit 1; }
    echo "router prom exposition ok"

    # Drain the survivors: the router and the surviving backend (with its live
    # session) must both exit 0 with a clean-drain log on SIGTERM.
    kill -TERM "$PID_RT"
    await_exit "$PID_RT" "$LOG_RT" "router"
    kill -TERM "$PID_B1"
    await_exit "$PID_B1" "$LOG_B1" "backend1"
    echo "sharded drain ok"
}

# ---- chaos: fault-injected router + 3 backends, kill -9 everything ---------

CHAOS_SPEC="error=0.03,latency=1ms@0.05,seed=11"

# chaos_worker KEY-PREFIX TRACE WANT ITERS — replays the golden trace
# through the incremental session API over and over, each run under a
# fresh routing key, and requires every verdict to match the local one.
# Touches $TMPDIR_E2E/$1.ok on success, writes $TMPDIR_E2E/$1.fail on the
# first mismatch.
chaos_worker() {
    local prefix="$1" trace="$2" want="$3" iters="$4"
    local f="testdata/golden/$trace.std" got norm i
    for i in $(seq 1 "$iters"); do
        got=$("$CLI" -q -algo auto -remote "$RBASE" -trace "$prefix-$i" \
            -incremental -chunk-bytes 512 -retries 8 -timeout 10s "$f" \
            2>"$TMPDIR_E2E/$prefix-$i.err" || true)
        norm=$(normalize "$got" "$got")
        if [ "$norm" != "$want" ]; then
            {
                echo "iteration $i verdict mismatch:"
                echo "  got:  $got"
                echo "  want: $want"
                cat "$TMPDIR_E2E/$prefix-$i.err"
            } >"$TMPDIR_E2E/$prefix.fail"
            return 0
        fi
    done
    : >"$TMPDIR_E2E/$prefix.ok"
}

leg_chaos() {
    local LOG_CB0="$TMPDIR_E2E/chaos-b0.log" LOG_CB1="$TMPDIR_E2E/chaos-b1.log"
    local LOG_CB2="$TMPDIR_E2E/chaos-b2.log" LOG_CRT="$TMPDIR_E2E/chaos-rt.log"
    boot_daemon "$LOG_CB0" -addr 127.0.0.1:0
    local PID_CB0=$BOOT_PID ADDR_CB0=$BOOT_ADDR
    boot_daemon "$LOG_CB1" -addr 127.0.0.1:0
    local PID_CB1=$BOOT_PID ADDR_CB1=$BOOT_ADDR
    boot_daemon "$LOG_CB2" -addr 127.0.0.1:0
    local PID_CB2=$BOOT_PID ADDR_CB2=$BOOT_ADDR
    local BACKENDS="http://$ADDR_CB0,http://$ADDR_CB1,http://$ADDR_CB2"
    boot_daemon "$LOG_CRT" -shard -backends "$BACKENDS" \
        -probe-interval 100ms -chaos "$CHAOS_SPEC" -addr 127.0.0.1:0
    local PID_CRT=$BOOT_PID ADDR_CRT=$BOOT_ADDR
    RBASE="http://$ADDR_CRT"
    echo "chaos router up at $RBASE (spec $CHAOS_SPEC) over 3 backends"

    curl -fsS "$RBASE/healthz" | grep -q '"backends_healthy":3' \
        || { echo "chaos healthz failed"; curl -sS "$RBASE/healthz"; exit 1; }

    # Local ground truth, computed once per trace.
    local lc ln WANT_CROSS WANT_NONE
    lc=$("$CLI" -q -algo auto testdata/golden/sharded-cross.std 2>/dev/null || true)
    WANT_CROSS=$(normalize "$lc" "$lc")
    ln=$("$CLI" -q -algo auto testdata/golden/sharded-none.std 2>/dev/null || true)
    WANT_NONE=$(normalize "$ln" "$ln")

    # -- Phase A: kill -9 a backend under load -------------------------------

    # Pin one keyed session to backend0 so the kill provably orphans it.
    local PIN_SID= PIN_KEY= HDRS SID BACKEND i
    for i in $(seq 1 64); do
        HDRS="$TMPDIR_E2E/chaos-pin-$i.hdrs"
        SID=$(curl -fsS --retry 8 --retry-all-errors -D "$HDRS" \
            -X POST "$RBASE/v1/sessions?trace=pin-$i" \
            | sed 's/.*"id":"\([^"]*\)".*/\1/')
        BACKEND=$(tr -d '\r' <"$HDRS" | sed -n 's/^[Xx]-[Aa]erodrome-[Bb]ackend: *//p' | head -1)
        if [ "$BACKEND" = "http://$ADDR_CB0" ]; then
            PIN_SID=$SID PIN_KEY="pin-$i"
            break
        fi
        curl -fsS --retry 8 --retry-all-errors -X DELETE \
            -H "X-Aerodrome-Trace: pin-$i" "$RBASE/v1/sessions/$SID" >/dev/null || true
    done
    [ -n "$PIN_SID" ] || { echo "no session landed on backend0"; exit 1; }
    printf 't1|begin|0\nt1|w(x)|1\n' | curl -fsS --retry 8 --retry-all-errors \
        --data-binary @- -H "X-Aerodrome-Trace: $PIN_KEY" -H "X-Aerodrome-Chunk-Seq: 0" \
        "$RBASE/v1/sessions/$PIN_SID/events" >/dev/null \
        || { echo "chaos pre-kill feed failed"; exit 1; }

    # Concurrent incremental replays, then yank backend0 mid-stream.
    local WPIDS=() p
    chaos_worker a-cross sharded-cross "$WANT_CROSS" 12 & WPIDS+=($!)
    chaos_worker a-none sharded-none "$WANT_NONE" 12 & WPIDS+=($!)
    sleep 0.4
    kill -9 "$PID_CB0"
    echo "killed backend0 mid-stream"

    # The pinned session survives the kill via journal replay; its report
    # still covers every event.
    printf 't1|end|0\n' | curl -fsS --retry 8 --retry-all-errors \
        --data-binary @- -H "X-Aerodrome-Trace: $PIN_KEY" -H "X-Aerodrome-Chunk-Seq: 1" \
        "$RBASE/v1/sessions/$PIN_SID/events" >/dev/null \
        || { echo "chaos failover feed failed"; cat "$LOG_CRT"; exit 1; }
    curl -fsS --retry 8 --retry-all-errors -X DELETE \
        -H "X-Aerodrome-Trace: $PIN_KEY" "$RBASE/v1/sessions/$PIN_SID" \
        | grep -q '"serializable":true.*"events":3\|"events":3.*"serializable":true' \
        || { echo "chaos failed-over session report wrong"; exit 1; }

    for p in "${WPIDS[@]}"; do wait "$p"; done
    for w in a-cross a-none; do
        [ -f "$TMPDIR_E2E/$w.fail" ] && { echo "worker $w failed:"; cat "$TMPDIR_E2E/$w.fail"; exit 1; }
        [ -f "$TMPDIR_E2E/$w.ok" ] || { echo "worker $w never finished"; exit 1; }
    done
    curl -fsS "$RBASE/metrics" | grep -q '"failovers_total":[1-9]' \
        || { echo "chaos phase A: no failover counted"; exit 1; }
    echo "phase A ok: backend kill -9 lost zero keyed sessions"

    # -- Phase B: kill -9 the router itself, restart on the same port --------

    # A keyed session opened on the doomed router: after the restart it must
    # re-attach by routing key (the seeded ring re-derives its backend, which
    # never died and still holds the engine state).
    local RE_SID
    RE_SID=$(curl -fsS --retry 8 --retry-all-errors \
        -X POST "$RBASE/v1/sessions?trace=reattach" | sed 's/.*"id":"\([^"]*\)".*/\1/')
    printf 't2|begin|0\nt2|w(z)|1\n' | curl -fsS --retry 8 --retry-all-errors \
        --data-binary @- -H "X-Aerodrome-Trace: reattach" -H "X-Aerodrome-Chunk-Seq: 0" \
        "$RBASE/v1/sessions/$RE_SID/events" >/dev/null \
        || { echo "pre-restart feed failed"; exit 1; }

    local WPIDS_B=()
    chaos_worker b-cross sharded-cross "$WANT_CROSS" 12 & WPIDS_B+=($!)
    chaos_worker b-none sharded-none "$WANT_NONE" 12 & WPIDS_B+=($!)
    sleep 0.3
    kill -9 "$PID_CRT"
    echo "killed router mid-stream"

    # Restart on the same address: the journal is gone, but the seeded ring
    # re-derives every key's placement, so live sessions re-attach. The port
    # can linger briefly after SIGKILL; retry the bind.
    local LOG_CRT2 RT2_UP= attempt
    for attempt in 1 2 3 4 5; do
        LOG_CRT2="$TMPDIR_E2E/chaos-rt2-$attempt.log"
        "$BIN" -shard -backends "$BACKENDS" -probe-interval 100ms -probe-on-start \
            -chaos "$CHAOS_SPEC" -addr "$ADDR_CRT" >"$LOG_CRT2" 2>&1 &
        local RT2_PID=$!
        PIDS+=("$RT2_PID")
        for _ in $(seq 1 50); do
            kill -0 "$RT2_PID" 2>/dev/null || break
            grep -q "listening on" "$LOG_CRT2" && { RT2_UP=1; break; }
            sleep 0.1
        done
        [ -n "$RT2_UP" ] && break
        sleep 0.2
    done
    [ -n "$RT2_UP" ] || { echo "router never restarted:"; cat "$LOG_CRT2"; exit 1; }
    PID_CRT=$RT2_PID LOG_CRT=$LOG_CRT2
    echo "router restarted on $ADDR_CRT"

    for p in "${WPIDS_B[@]}"; do wait "$p"; done
    for w in b-cross b-none; do
        [ -f "$TMPDIR_E2E/$w.fail" ] && { echo "worker $w failed:"; cat "$TMPDIR_E2E/$w.fail"; exit 1; }
        [ -f "$TMPDIR_E2E/$w.ok" ] || { echo "worker $w never finished"; exit 1; }
    done

    # The pre-restart session re-attaches: its remaining events land on the
    # backend that held it all along, and the final report covers everything.
    printf 't2|end|0\n' | curl -fsS --retry 8 --retry-all-errors --data-binary @- \
        -H "X-Aerodrome-Trace: reattach" -H "X-Aerodrome-Chunk-Seq: 1" \
        "$RBASE/v1/sessions/$RE_SID/events" >/dev/null \
        || { echo "post-restart feed failed"; cat "$LOG_CRT"; exit 1; }
    curl -fsS --retry 8 --retry-all-errors -X DELETE \
        -H "X-Aerodrome-Trace: reattach" "$RBASE/v1/sessions/$RE_SID" \
        | grep -q '"serializable":true.*"events":3\|"events":3.*"serializable":true' \
        || { echo "re-attached session report wrong"; exit 1; }
    curl -fsS "$RBASE/metrics" | grep -q '"sessions_reattached_total":[1-9]' \
        || { echo "no re-attach counted"; exit 1; }
    echo "phase B ok: router kill -9 + restart, keyed replays kept their verdicts"

    # Drain what's left: the restarted router and the two surviving backends.
    kill -TERM "$PID_CRT"
    await_exit "$PID_CRT" "$LOG_CRT" "chaos router"
    kill -TERM "$PID_CB1"
    await_exit "$PID_CB1" "$LOG_CB1" "chaos backend1"
    kill -TERM "$PID_CB2"
    await_exit "$PID_CB2" "$LOG_CB2" "chaos backend2"
    echo "chaos drain ok"
}

# ---- load: open-loop burst smoke through the sharded topology --------------

leg_load() {
    local LOG_L0="$TMPDIR_E2E/load-b0.log" LOG_L1="$TMPDIR_E2E/load-b1.log"
    local LOG_LRT="$TMPDIR_E2E/load-rt.log"
    # The per-backend byte budget matches the burst-smoke scenario's
    # in-process topology, so the leg really exercises 429 + Retry-After
    # under the square-wave burst, not just happy-path checks.
    boot_daemon "$LOG_L0" -addr 127.0.0.1:0 -tenant-bytes-per-sec 262144
    local PID_L0=$BOOT_PID ADDR_L0=$BOOT_ADDR
    boot_daemon "$LOG_L1" -addr 127.0.0.1:0 -tenant-bytes-per-sec 262144
    local PID_L1=$BOOT_PID ADDR_L1=$BOOT_ADDR
    boot_daemon "$LOG_LRT" -shard \
        -backends "http://$ADDR_L0,http://$ADDR_L1" -probe-interval 100ms -addr 127.0.0.1:0
    local PID_LRT=$BOOT_PID ADDR_LRT=$BOOT_ADDR
    local LBASE="http://$ADDR_LRT"
    echo "load topology up at $LBASE over http://$ADDR_L0 and http://$ADDR_L1"

    # A non-zero exit means client-visible hard failures (wrong verdicts,
    # non-retryable statuses) or a dead topology — both fail the leg.
    local OUT="$TMPDIR_E2E/load.json"
    go run ./cmd/experiments -run load \
        -load-target "$LBASE" -load-scenario burst-smoke -json "$OUT" \
        || { echo "load smoke run failed"; cat "$LOG_LRT"; exit 1; }

    grep -q '"engine": "load-burst-smoke-ext"' "$OUT" \
        || { echo "no load row emitted:"; cat "$OUT"; exit 1; }

    # Sane latency row: a p99 must be present, positive, and under a
    # minute — beyond that the open-loop clock itself was broken.
    local P99 COMPLETED
    P99=$(sed -n 's/.*"p99_ms": \([0-9.]*\).*/\1/p' "$OUT" | head -1)
    [ -n "$P99" ] || { echo "no p99 in load row:"; cat "$OUT"; exit 1; }
    awk "BEGIN{exit !($P99 > 0 && $P99 < 60000)}" \
        || { echo "insane p99 ${P99}ms:"; cat "$OUT"; exit 1; }
    COMPLETED=$(sed -n 's/.*"completed": \([0-9]*\).*/\1/p' "$OUT" | head -1)
    [ -n "$COMPLETED" ] && [ "$COMPLETED" -gt 0 ] \
        || { echo "no admitted checks in load row:"; cat "$OUT"; exit 1; }
    echo "load row ok: completed=$COMPLETED p99=${P99}ms"

    kill -TERM "$PID_LRT"
    await_exit "$PID_LRT" "$LOG_LRT" "load router"
    kill -TERM "$PID_L0"
    await_exit "$PID_L0" "$LOG_L0" "load backend0"
    kill -TERM "$PID_L1"
    await_exit "$PID_L1" "$LOG_L1" "load backend1"
    echo "load drain ok"
}

case "$MODE" in
    single)  leg_single ;;
    sharded) leg_sharded ;;
    chaos)   leg_chaos ;;
    load)    leg_load ;;
    all)     leg_single; leg_sharded; leg_chaos; leg_load ;;
    *) echo "usage: $0 [single|sharded|chaos|load|all]"; exit 2 ;;
esac
echo "e2e: $MODE checks passed"
