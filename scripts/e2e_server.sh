#!/usr/bin/env bash
# End-to-end smoke of the real aerodromed binary, as CI runs it: build,
# boot on an ephemeral port, replay golden traces over HTTP (verdicts must
# match the local CLI byte for byte), exercise the session API with curl,
# then SIGTERM and require a clean drain within the deadline.
set -euo pipefail
cd "$(dirname "$0")/.."

BINDIR=$(mktemp -d)
BIN="$BINDIR/aerodromed"
LOG=$(mktemp)
PID=
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$BINDIR"; rm -f "$LOG"' EXIT

go build -o "$BIN" ./cmd/aerodromed

"$BIN" -addr 127.0.0.1:0 -session-ttl 1m >"$LOG" 2>&1 &
PID=$!

# Wait for the daemon to announce its port.
ADDR=
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$LOG" | head -1)
    [ -n "$ADDR" ] && break
    kill -0 "$PID" 2>/dev/null || { echo "daemon died:"; cat "$LOG"; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "daemon never became ready:"; cat "$LOG"; exit 1; }
BASE="http://$ADDR"
echo "daemon up at $BASE"

curl -fsS "$BASE/healthz" | grep -q '"ok"' || { echo "healthz failed"; exit 1; }

# Golden replay over HTTP: the remote CLI verdict must match the local
# one on verdict, violation index and check kind (the local renderer has
# symbol names the wire format deliberately does not carry).
normalize() {
    printf '%s\n' "$1" | sed -E \
        -e 's/^(result: (NOT )?conflict serializable).*/\1/' \
        -e "s/\$/ $(printf '%s' "$2" | grep -oE 'at event [0-9]+' || true)/" \
        -e "s/\$/ $(printf '%s' "$2" | grep -oE '[a-z]+-[a-z-]+ check' || true)/"
}
for trace in sharded-none sharded-cross chain-lock phase-delayed; do
    f="testdata/golden/$trace.std"
    local_out=$(go run ./cmd/aerodrome -q -algo auto "$f" 2>/dev/null || true)
    remote_out=$(go run ./cmd/aerodrome -q -algo auto -remote "$BASE" "$f" 2>/dev/null || true)
    local_norm=$(normalize "$local_out" "$local_out")
    remote_norm=$(normalize "$remote_out" "$remote_out")
    if [ "$local_norm" != "$remote_norm" ]; then
        echo "verdict mismatch on $trace:"
        echo "  local:  $local_out"
        echo "  remote: $remote_out"
        exit 1
    fi
    echo "golden $trace: verdicts agree ($local_norm)"
done

# Raw curl check: the wire format is plain HTTP + JSON.
curl -fsS --data-binary @testdata/golden/sharded-cross.std "$BASE/v1/check" \
    | grep -q '"serializable":false' || { echo "curl check failed"; exit 1; }

# Session API with curl: create, feed two chunks (split mid-line), final report.
SID=$(curl -fsS -X POST "$BASE/v1/sessions" | sed 's/.*"id":"\([^"]*\)".*/\1/')
printf 't1|begin|0\nt1|w(' | curl -fsS --data-binary @- "$BASE/v1/sessions/$SID/events" >/dev/null
printf 'x)|1\nt1|end|0\n'  | curl -fsS --data-binary @- "$BASE/v1/sessions/$SID/events" >/dev/null
curl -fsS -X DELETE "$BASE/v1/sessions/$SID" \
    | grep -q '"serializable":true.*"events":3\|"events":3.*"serializable":true' \
    || { echo "session flow failed"; exit 1; }
echo "session flow ok"

curl -fsS "$BASE/metrics" | grep -q '"events_total"' || { echo "metrics failed"; exit 1; }

# Graceful-shutdown drain check: SIGTERM must exit 0 within the deadline.
kill -TERM "$PID"
for _ in $(seq 1 100); do
    kill -0 "$PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$PID" 2>/dev/null; then
    echo "daemon did not exit within 10s of SIGTERM"; cat "$LOG"; exit 1
fi
set +e; wait "$PID"; CODE=$?; set -e
[ "$CODE" -eq 0 ] || { echo "daemon exited $CODE after SIGTERM:"; cat "$LOG"; exit 1; }
grep -q "drained cleanly" "$LOG" || { echo "no clean-drain log:"; cat "$LOG"; exit 1; }
echo "graceful drain ok"
echo "e2e: all checks passed"
