package aerodrome

import (
	"io"
	"time"

	"aerodrome/internal/core"
	"aerodrome/internal/parcheck"
	"aerodrome/internal/pipeline"
	"aerodrome/internal/rapidio"
	"aerodrome/internal/trace"
)

// EngineStats is a snapshot of the introspection counters behind one
// checker's engine: the rates its optimizations stand on. All counters
// are zero for engines without the corresponding machinery (Velodrome
// and DoubleChecker report nothing; the flat and tree engines have no
// representation transitions to count).
type EngineStats struct {
	// EpochHits / EpochMisses count conflict checks resolved by the
	// FastTrack-style epoch fast path vs. falling through to the full
	// O(width) clock comparison.
	EpochHits   int64 `json:"epoch_hits"`
	EpochMisses int64 `json:"epoch_misses"`
	// EndsFull / EndsCollected count outermost transaction ends that took
	// the full propagation path vs. the garbage-collection fast path.
	EndsFull      int64 `json:"ends_full"`
	EndsCollected int64 `json:"ends_collected"`
	// SparsePromotions counts sparse read accumulators that outgrew the
	// association list and promoted to dense clocks.
	SparsePromotions int64 `json:"sparse_promotions"`
	// TreeDemotions / TreeRepromotions count hybrid thread clocks
	// demoting tree→flat under join churn and re-promoting after the
	// hysteresis quiet streak; WidthPromotions counts Auto thread clocks
	// promoting flat→tree when the observed width crossed the threshold.
	TreeDemotions    int64 `json:"tree_demotions"`
	TreeRepromotions int64 `json:"tree_repromotions"`
	WidthPromotions  int64 `json:"width_promotions"`
}

// EpochHitRate returns EpochHits/(EpochHits+EpochMisses), or 0 with no
// guarded checks yet.
func (s EngineStats) EpochHitRate() float64 {
	total := s.EpochHits + s.EpochMisses
	if total == 0 {
		return 0
	}
	return float64(s.EpochHits) / float64(total)
}

// Add accumulates o into s (aggregation across checkers or sessions).
func (s *EngineStats) Add(o EngineStats) {
	s.EpochHits += o.EpochHits
	s.EpochMisses += o.EpochMisses
	s.EndsFull += o.EndsFull
	s.EndsCollected += o.EndsCollected
	s.SparsePromotions += o.SparsePromotions
	s.TreeDemotions += o.TreeDemotions
	s.TreeRepromotions += o.TreeRepromotions
	s.WidthPromotions += o.WidthPromotions
}

// Sub returns the counter-wise difference s − o: the activity between
// two snapshots of the same engine (all counters are monotonic).
func (s EngineStats) Sub(o EngineStats) EngineStats {
	return EngineStats{
		EpochHits:        s.EpochHits - o.EpochHits,
		EpochMisses:      s.EpochMisses - o.EpochMisses,
		EndsFull:         s.EndsFull - o.EndsFull,
		EndsCollected:    s.EndsCollected - o.EndsCollected,
		SparsePromotions: s.SparsePromotions - o.SparsePromotions,
		TreeDemotions:    s.TreeDemotions - o.TreeDemotions,
		TreeRepromotions: s.TreeRepromotions - o.TreeRepromotions,
		WidthPromotions:  s.WidthPromotions - o.WidthPromotions,
	}
}

func statsFromCore(s core.EngineStats) EngineStats {
	return EngineStats{
		EpochHits:        s.EpochHits,
		EpochMisses:      s.EpochMisses,
		EndsFull:         s.EndsFull,
		EndsCollected:    s.EndsCollected,
		SparsePromotions: s.SparsePromotions,
		TreeDemotions:    s.TreeDemotions,
		TreeRepromotions: s.TreeRepromotions,
		WidthPromotions:  s.WidthPromotions,
	}
}

func engineStatsOf(eng core.Engine) (EngineStats, bool) {
	if r, ok := eng.(core.StatsReporter); ok {
		return statsFromCore(r.Stats()), true
	}
	return EngineStats{}, false
}

// Stats returns the checker's engine introspection counters. ok is false
// for engines without them (Velodrome, VelodromePK, DoubleChecker).
func (c *Checker) Stats() (EngineStats, bool) { return engineStatsOf(c.eng) }

// Stats returns the incremental checker's engine introspection counters.
// ok is false for engines without them.
func (c *IncrementalChecker) Stats() (EngineStats, bool) {
	s, ok := c.f.EngineStats()
	return statsFromCore(s), ok
}

// StageTimes returns how much wall time the incremental checker has spent
// parsing chunk bytes vs. running the engine over the parsed events.
func (c *IncrementalChecker) StageTimes() (parse, check time.Duration) {
	return c.stages.ParseTime(), c.stages.CheckTime()
}

// Stats returns the monitor's engine introspection counters, consistent
// with a momentary pause of the monitored program. ok is false for
// engines without them.
func (m *Monitor) Stats() (EngineStats, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return engineStatsOf(m.eng)
}

// CheckStats reports where one pipelined check spent its time and what
// its engine did. ParseTime and CheckTime are per-stage wall times (the
// stages overlap on separate goroutines, so their sum can exceed the
// call's elapsed time); Engine holds the engine's introspection counters
// when HasEngineStats is true.
type CheckStats struct {
	Engine         EngineStats
	HasEngineStats bool
	ParseTime      time.Duration
	CheckTime      time.Duration
}

// CheckReaderPipelinedStats is CheckReaderPipelined returning per-stage
// timings and engine introspection counters alongside the report.
func CheckReaderPipelinedStats(r io.Reader, a Algorithm) (*Report, CheckStats, error) {
	return checkPipelinedStats(rapidio.NewReader(r), a)
}

// CheckBinaryReaderPipelinedStats is CheckBinaryReaderPipelined returning
// per-stage timings and engine introspection counters alongside the
// report.
func CheckBinaryReaderPipelinedStats(r io.Reader, a Algorithm) (*Report, CheckStats, error) {
	return checkPipelinedStats(rapidio.NewBinaryReader(r), a)
}

func checkPipelinedStats(src pipeline.BatchSource, a Algorithm) (*Report, CheckStats, error) {
	eng, err := newEngine(a)
	if err != nil {
		return nil, CheckStats{}, err
	}
	var stages pipeline.StageStats
	v, n, err := pipeline.Run(eng, src, pipeline.Config{Stats: &stages})
	if err != nil {
		return nil, CheckStats{}, err
	}
	cs := CheckStats{ParseTime: stages.ParseTime(), CheckTime: stages.CheckTime()}
	cs.Engine, cs.HasEngineStats = engineStatsOf(eng)
	rep := &Report{
		Serializable: v == nil,
		Violation:    fromInternal(v),
		Events:       n,
		Algorithm:    eng.Name(),
	}
	return rep, cs, nil
}

// ParallelStats describes what CheckSTDParallelIntra's partitioner did
// with a trace: how far the speculative sharding got and whether the
// verdict came from parallel shards or a sequential replay.
type ParallelStats struct {
	// Shards is the number of engines that actually ran; 1 means the
	// trace was checked sequentially.
	Shards int `json:"shards"`
	// Components is the number of independent components the scan found.
	Components int `json:"components"`
	// Relays is the number of relay (pure coordinator) threads.
	Relays int `json:"relays"`
	// Replicated counts relay–relay events copied into every shard.
	Replicated int64 `json:"replicated"`
	// Conflict reports that cross-shard clock flow forced a sequential
	// replay; ConflictIndex is the global index of the offending event
	// (-1 when Conflict is false).
	Conflict      bool  `json:"conflict"`
	ConflictIndex int64 `json:"conflict_index"`
	// Replayed reports that the verdict came from a sequential pass
	// (conflict, degenerate partition, or workers <= 1).
	Replayed bool `json:"replayed"`
}

func parallelStatsFromInternal(s parcheck.Stats) ParallelStats {
	return ParallelStats{
		Shards:        s.Shards,
		Components:    s.Components,
		Relays:        s.Relays,
		Replicated:    s.Replicated,
		Conflict:      s.Conflict,
		ConflictIndex: s.ConflictIndex,
		Replayed:      s.Replayed,
	}
}

// CheckSTDParallelIntraStats is CheckSTDParallelIntra returning the
// partitioner's statistics alongside the report. When the algorithm has
// no parallel partition path (or workers <= 1) the check runs
// sequentially and the stats report Shards=1, Replayed=true.
func CheckSTDParallelIntraStats(r io.Reader, a Algorithm, workers int) (*Report, ParallelStats, error) {
	algo, ok := coreAlgorithm(a)
	if !ok || workers <= 1 {
		rep, err := CheckSTD(r, a)
		return rep, ParallelStats{Shards: 1, ConflictIndex: -1, Replayed: true}, err
	}
	rd := rapidio.NewReader(r)
	var events []trace.Event
	for {
		e, more := rd.Next()
		if !more {
			break
		}
		events = append(events, e)
	}
	if err := rd.Err(); err != nil {
		return nil, ParallelStats{}, err
	}
	v, n, stats := parcheck.Check(events, algo, workers)
	rep := &Report{
		Serializable: v == nil,
		Violation:    fromInternal(v),
		Events:       n,
		Algorithm:    algo.String(),
	}
	return rep, parallelStatsFromInternal(stats), nil
}
