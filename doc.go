// Package aerodrome is a Go implementation of AeroDrome, the single-pass,
// linear-time vector-clock algorithm for detecting conflict-serializability
// (atomicity) violations in traces of concurrent programs, from
//
//	Umang Mathur and Mahesh Viswanathan.
//	"Atomicity Checking in Linear Time using Vector Clocks." ASPLOS 2020.
//
// The package also provides the Velodrome baseline (Flanagan–Freund–Yi,
// PLDI 2008), a DoubleChecker-style two-phase analysis, trace generation
// and I/O, and a benchmark harness regenerating the paper's evaluation; see
// DESIGN.md for the system inventory and EXPERIMENTS.md for results.
//
// # Clock representations and sublinear hot paths
//
// The evaluated engine (Algorithm 3, aerodrome.Optimized) runs on a
// pluggable clock-representation layer: flat vector clocks (internal/vc,
// the default) or tree clocks (internal/treeclock, after Mathur et al.,
// ASPLOS 2022, adapted to AeroDrome's clock discipline via explicit
// version streams), selected with aerodrome.OptimizedTree. On top of
// either representation the engine keeps its per-event cost sublinear in
// thread count: an active-transaction registry replaces the all-thread
// update-set scans, per-thread released/dirty lock lists replace the
// end-event lock-table sweeps, and FastTrack-style epoch fast paths skip
// already-absorbed clock checks entirely. BENCH_baseline.json and
// BENCH_after.json at the repository root record the resulting ns/event
// and allocs/event on a thread-scaling grid (T ∈ {8, 64, 256}), produced
// by `experiments -run bench`; both files must come from the same machine
// session to be comparable. Tree clocks win where clocks stay sparse
// (thread-sharded workloads: about 2× at T=256); densely entangled chain
// workloads favor the flat representation, which is why it remains the
// default.
//
// # Checking a trace
//
//	checker := aerodrome.NewChecker(aerodrome.Optimized)
//	for _, ev := range events {
//	    if v := checker.Event(ev); v != nil {
//	        fmt.Println("atomicity violation:", v)
//	        break
//	    }
//	}
//
// # Monitoring a live program
//
// The Monitor type offers a concurrency-safe front end for instrumenting
// running Go code: register threads, wrap atomic blocks in Begin/End, and
// report shared accesses; the monitor reports the first violation.
//
//	m := aerodrome.NewMonitor()
//	worker := m.Thread("worker-1")
//	worker.Begin()
//	worker.Read("balance")
//	worker.Write("balance")
//	worker.End()
package aerodrome
