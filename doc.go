// Package aerodrome is a Go implementation of AeroDrome, the single-pass,
// linear-time vector-clock algorithm for detecting conflict-serializability
// (atomicity) violations in traces of concurrent programs, from
//
//	Umang Mathur and Mahesh Viswanathan.
//	"Atomicity Checking in Linear Time using Vector Clocks." ASPLOS 2020.
//
// The package also provides the Velodrome baseline (Flanagan–Freund–Yi,
// PLDI 2008), a DoubleChecker-style two-phase analysis, trace generation
// and I/O, and a benchmark harness regenerating the paper's evaluation; see
// DESIGN.md for the system inventory and EXPERIMENTS.md for results.
//
// # Checking a trace
//
//	checker := aerodrome.NewChecker(aerodrome.Optimized)
//	for _, ev := range events {
//	    if v := checker.Event(ev); v != nil {
//	        fmt.Println("atomicity violation:", v)
//	        break
//	    }
//	}
//
// # Monitoring a live program
//
// The Monitor type offers a concurrency-safe front end for instrumenting
// running Go code: register threads, wrap atomic blocks in Begin/End, and
// report shared accesses; the monitor reports the first violation.
//
//	m := aerodrome.NewMonitor()
//	worker := m.Thread("worker-1")
//	worker.Begin()
//	worker.Read("balance")
//	worker.Write("balance")
//	worker.End()
package aerodrome
