// Package aerodrome is a Go implementation of AeroDrome, the single-pass,
// linear-time vector-clock algorithm for detecting conflict-serializability
// (atomicity) violations in traces of concurrent programs, from
//
//	Umang Mathur and Mahesh Viswanathan.
//	"Atomicity Checking in Linear Time using Vector Clocks." ASPLOS 2020.
//
// The package also provides the Velodrome baseline (Flanagan–Freund–Yi,
// PLDI 2008), a DoubleChecker-style two-phase analysis, trace generation
// and I/O, and a benchmark harness regenerating the paper's evaluation; see
// DESIGN.md for the system inventory and EXPERIMENTS.md for results.
//
// # Clock representations and sublinear hot paths
//
// The evaluated engine (Algorithm 3, aerodrome.Optimized) runs on a
// pluggable clock-representation layer with three instantiations:
//
//   - flat (aerodrome.Optimized, the default): dense vector clocks
//     (internal/vc); every operation is a tight O(width) loop.
//   - tree (aerodrome.OptimizedTree): tree clocks (internal/treeclock,
//     after Mathur et al., ASPLOS 2022, adapted to AeroDrome's clock
//     discipline via explicit version streams); joins, copies and
//     comparisons skip subtrees the target already dominates.
//   - hybrid (aerodrome.OptimizedHybrid): tree clocks for the per-thread
//     clocks ℂ_t — where the publish-absorb discipline makes
//     subtree-skipping pay — and flat clocks for the auxiliary
//     accumulators (𝕎_x, ℝ_x, lock and begin clocks), which alias the
//     thread clocks' flat snapshots copy-on-write. Thread clocks whose
//     workload defeats tree pruning (densely entangled chains, where
//     every join races past most of the tree) demote themselves to the
//     flat representation adaptively, so the hybrid tracks the better of
//     the other two on both workload extremes.
//
// A fourth instantiation picks the representation adaptively:
//
//   - auto (aerodrome.Auto): structurally the hybrid engine, but thread
//     clocks start flat and promote themselves to trees once the observed
//     thread width crosses ~16 (re-evaluated as threads appear), so small
//     traces pay flat's constants and wide ones get the tree wins without
//     the caller choosing. Demoted thread clocks (in both hybrid and auto)
//     re-promote with hysteresis: a streak of joins that change nothing —
//     the signature of a sharded steady state after a chain burst — that
//     doubles with each demotion, so phase-flapping workloads settle on
//     flat instead of thrashing.
//
// The ȒR_x accumulators are sparse (vc.Sparse, thread→time pairs that
// promote themselves to dense past a bench-swept threshold of 16 entries;
// see vc.PromoteThreshold) in every representation.
// On top of any representation the engine keeps its per-event cost
// sublinear in thread count: an active-transaction registry replaces the
// all-thread update-set scans, per-thread released/dirty lock lists
// replace the end-event lock-table sweeps, and FastTrack-style epoch fast
// paths skip already-absorbed clock checks entirely. BENCH_baseline.json
// and BENCH_after.json at the repository root record the resulting
// ns/event and allocs/event on a thread-scaling grid (T ∈ {8, 64, 256}),
// produced by `experiments -run bench`; both files must come from the
// same machine session to be comparable. At T=256 the hybrid runs about
// 2× faster than flat on thread-sharded workloads and matches flat on
// chain workloads (where tree clocks alone are >2× slower); flat remains
// the default pending soak time for the hybrid.
//
// # Pipelined and parallel checking
//
// The single-pass, constant-per-event algorithm streams naturally, so the
// package offers an ingestion pipeline (internal/pipeline) that overlaps
// parsing and checking: a producer goroutine fills pooled event batches
// from the trace log and hands them to the checker through a bounded
// channel — backpressure keeps memory constant, the batch pool keeps the
// steady state allocation-free, and the checker's first violation stops
// the producer early. CheckReaderPipelined and CheckBinaryReaderPipelined
// expose it per trace; CheckFilesParallel checks N traces concurrently,
// one independent engine and pipeline per file. The pipelined paths are
// observationally identical to the sequential ones: same verdict, same
// violation index, same event count, enforced by a concurrency-
// differential suite that runs under the race detector in CI and by a
// dedicated fuzz target (FuzzPipelineDifferential).
//
// # Speculative intra-trace parallelism
//
// A single trace can also be checked on several cores without giving up
// exactness (internal/parcheck; CheckSTDParallelIntra; `aerodrome -par N`).
// The analysis is inherently sequential in general — every event may
// observe clocks written by any earlier event — but most traces are not
// general: a union-find pass over the trace groups threads, variables and
// locks into connected components of the "touches" relation, components
// are packed into S shards, and one ordinary engine per shard checks its
// projection concurrently. Threads that only fork and join other threads
// (the coordinator shape of every generated workload) would otherwise
// fuse the whole trace into one component, so they are carved out as
// relay threads and their fork/join events are replicated into the
// shards of their counterparties. The speculation is audited, not
// assumed: each relay carries a taint mask of the shards whose clocks
// have flowed into it, and an event that would carry clocks from one
// shard into another (a join from a tainted relay, observed from a
// different shard) is a detected conflict — the whole trace is then
// replayed on one engine, so verdicts, violation indices and event
// counts are exact in every case. Conflict-free sharded runs and
// replayed runs alike are pinned byte-identical to CheckSTD by a
// differential suite (golden corpus, paper traces, scenario shapes,
// fuzz seeds) and a dedicated fuzz target (FuzzParallelDifferential),
// both under -race in CI. The par-* rows in BENCH_after.json measure
// the partitioner against the sequential engines on the same grid;
// wall-clock speedup requires actual cores (see internal/bench/par.go).
//
// For streams that arrive in pieces rather than behind an io.Reader — a
// network session, a log follower — IncrementalChecker accepts arbitrary
// byte chunks of a trace log (STD text or ADB1 binary, sniffed from the
// first bytes; boundaries need not align with lines or records) and is
// likewise pinned to the sequential checkers over the concatenated bytes.
// Monitor.Event is the equivalent hook at the Monitor level for
// already-decoded events.
//
// # Multi-analysis checking
//
// The atomicity checker's vector-clock substrate answers more questions
// than serializability, so one ingested event stream can drive several
// analyses off a single parse ("one parse, one clock substrate, N
// verdicts" — ROADMAP item 4). An analysis set is a list of
// AnalysisKind values: AnalysisAtomicity (the default, the AeroDrome
// algorithms above) and AnalysisHBRace, a FastTrack-style happens-before
// data-race detector (internal/race) reusing the same internal/vc clocks
// — per-variable write/read epochs with read escalation to full vectors
// under concurrent readers, release/fork/join publication edges, and
// write-write / write-read / read-write verdicts. CheckSTDAnalyses,
// CheckReaderPipelinedAnalyses and NewIncrementalCheckerAnalyses accept
// the set (the CLI spells it `-analyses atomicity,hbrace`); each
// analysis latches at its own first violation and the stream stops once
// every requested analysis is done. The report's top-level fields always
// carry the atomicity verdict in the legacy wire format; per-analysis
// entries land in Report.Analyses — and when the set is exactly the
// default ["atomicity"], the output is byte-identical to the
// single-analysis path. Unknown analysis names are rejected up front
// with the valid set listed, in the library, the CLI (every mode) and
// the service alike. The hbrace detector is pinned against a naive
// full-vector-clock happens-before oracle over the golden corpus, the
// paper traces, the scenario shapes and the fuzz seeds
// (race_differential_test.go, FuzzRaceDifferential), under -race in CI;
// the dual-analysis ingest cost is tracked by the dual-analysis rows in
// BENCH_after.json (~1.1x the single-analysis pipelined path on
// sharded-t64).
//
// # The aerodromed service
//
// cmd/aerodromed (and `aerodrome -serve`) exposes all of the above as a
// long-running, stdlib-only HTTP service: the algorithm is a single-pass,
// bounded-memory sweep, so one daemon multiplexes many concurrent trace
// streams, each on its own engine. POST /v1/check streams a whole trace
// (STD or binary, sniffed) through the ingestion pipeline and returns the
// JSON Report; the /v1/sessions API is the incremental mode — create a
// session, feed STD chunks, poll the snapshot, finalize for the Report —
// backed by IncrementalChecker per session. Admission is controlled, not
// queued: concurrent sessions and checks are capped (429/503 +
// Retry-After beyond the caps), request bodies are bounded, idle sessions
// are evicted after a TTL, and SIGTERM drains in-flight work before
// exiting. GET /healthz flips to 503 while draining; GET /metrics serves
// expvar-style JSON (sessions, checks, events/sec, verdicts, per-engine
// selection counts — the observability for the server's `auto` engine
// default — plus a per-tenant section). The CLI fronts a remote daemon via
// `aerodrome -remote URL`. The httptest-based end-to-end suite replays the
// golden corpus and the paper traces through both endpoints and pins them
// byte-identical to sequential CheckSTD, under -race with ≥64 concurrent
// sessions; see examples/server for a quickstart.
//
// # Scale-out: multi-tenant quotas and the shard router
//
// Two layers turn one daemon into a fleet. Per-tenant quotas
// (server.TenantQuota; tenant named by the X-Aerodrome-Tenant header)
// budget concurrent sessions, concurrent checks and sustained ingest
// bytes/sec per tenant on top of the global caps — over-budget requests
// are rejected 429 + Retry-After, never queued, and every tenant gets its
// own /metrics counters. The shard router (`aerodromed -shard -backends
// URL,URL,...`) consistent-hashes sessions and one-shot checks across N
// backend instances by a client-supplied trace key (X-Aerodrome-Trace or
// ?trace=, falling back to the tenant): the ring is a pure function of
// the backend URLs, so a restarted router routes identically, and a lost
// backend (detected by /healthz probes and proxy failures) deterministically
// moves exactly its keys to the ring's next backend — and back on
// recovery. Sessions stay backend-affine, and the router journals every
// applied session chunk (bounded memory with optional spill): when a
// session's backend dies, the next feed transparently recreates the
// session on the ring's next backend and replays the journal first — the
// client sees an ordinary 200 and a report covering every event. Only a
// truncated journal (the session outgrew its caps) answers 409 +
// Retry-After, asking the client for a full replay; chunk-sequence
// numbers (X-Aerodrome-Chunk-Seq) make blind retries idempotent and turn
// post-restart placement drift into a detected 409 instead of a silent
// wrong verdict. server.Client implements the matching retry loop:
// per-attempt timeouts, capped jittered backoff honoring Retry-After,
// rewindable bodies, and ring-epoch awareness from /metrics. The
// internal/faultinject package (wired as `aerodromed -chaos`) injects
// connection dooms, partial writes, transport errors and latency; the
// chaos e2e leg (scripts/e2e_server.sh chaos) kill -9s backends and the
// router mid-stream under injected faults and holds every keyed session's
// verdict byte-identical to the local sequential check. Every routed
// response carries X-Aerodrome-Backend. The serve-sat-* rows in
// BENCH_after.json (from `experiments -run saturate`) measure aggregate
// events/sec under N concurrent clients for the single-server,
// router+2-backend, and fault-injected router topologies — the chaos row
// asserts zero client-visible hard failures — and a bench-gate CI job
// re-measures pinned engine/ingest rows against BENCH_baseline.json's
// gate_rows so the perf work of PR 1–4 cannot regress silently
// (internal/bench/gate.go).
//
// # Open-loop load harness and the scenario zoo
//
// Where the saturation rows ask "how much can a topology absorb", the
// load harness (internal/loadgen, `experiments -run load`) asks "what
// does a scheduled demand curve experience": each scenario pairs a
// seeded arrival process — constant, linear ramp, square-wave burst, or
// long-lived low-rate incremental sessions — with a payload drawn from
// the scenario-shape workload patterns (producer-consumer hand-offs,
// barrier phases, a hot-lock convoy, and an adversarial quota-thrash
// shape whose variable footprint grows without bound). Schedules are
// computed up front by Poisson thinning from a per-profile seed, so the
// demand a run applies is reproducible; a dispatcher walks the schedule
// on the wall clock and hands arrivals to a worker pool through a
// bounded queue without ever blocking on the server — arrivals that
// find the queue full are counted as coordinated-omission debt rather
// than silently delaying the clock, and every latency is measured from
// the arrival's scheduled time into a lock-free HDR-style histogram.
// The load-<scenario>-<topology> rows in BENCH_after.json carry
// p50/p99/p999 end-to-end latency, admission rejections (429/503),
// failover counts scraped from the router, and the omission debt, for
// the single, router+2 and fault-injected router topologies (the last
// with a backend killed mid-run). Retry semantics are shared with the
// saturation bench through one helper (internal/bench Outcome and
// RetryPolicy), and every admitted response — one-shot or session
// finalize — is pinned against a locally computed CheckSTD report: a
// harness that returns wrong answers quickly is a failure, not a
// throughput record. A CI leg (scripts/e2e_server.sh load) drives the
// low-RPS burst-smoke scenario against real daemons behind the router.
//
// # Observability
//
// Every daemon stage is instrumented through internal/obs, a lock-free
// metrics registry (atomic counters, gauges and log-linear latency
// histograms). GET /metrics keeps the expvar-style JSON — extended with
// a "stages" section carrying per-stage latency quantiles (parse,
// check, feed, finalize on a backend; proxy, replay, failover on the
// router) and an "engine" section surfacing the EngineStats
// introspection counters (epoch fast-path hits/misses, GC'd ends,
// sparse promotions, tree demotions/re-promotions, width promotions)
// aggregated across every check and session — and GET
// /metrics?format=prom serves the same registry as Prometheus text
// exposition (counters, gauges, cumulative histograms in seconds), so
// the JSON and the scrape can never disagree: both read the same
// atomics. Logs are structured log/slog text at -log-level; every
// request carries an X-Aerodrome-Request-Id — generated at the edge
// when absent, echoed on the response and propagated on every routed
// hop — so one grep follows one request through router and backend.
// The same engine counters reach the CLI (`aerodrome -stats`) and the
// BENCH row columns (epoch_hit_rate and friends), and -debug-addr
// serves net/http/pprof on its own listener, never the service address.
//
// # Testing strategy
//
// A hybrid representation diverges structurally from the reference
// algorithm in exactly the ways that are hard to eyeball, so the checker
// is held to verdict equivalence at four levels:
//
//   - Differential suites: every representation must produce bit-identical
//     verdicts, violation indices, check kinds and GC decisions on the
//     paper's worked traces, on randomized well-formed traces (including
//     lock-heavy and nested-critical-section shapes generated by
//     internal/testutil), and on the benchmark workload patterns; Basic
//     (Algorithm 1) anchors the verdicts, with the optimized detection
//     point earlier or equal.
//   - Native fuzzing: FuzzDifferentialEngines (internal/core) decodes
//     arbitrary fuzz bytes into well-formed traces through a repairing
//     byte-program VM (internal/testutil) and cross-checks all engines;
//     the corpus is seeded with ρ1–ρ4, injected-violation workloads, the
//     phase-shift (demote-then-repromote) shape, and the four scenario-zoo
//     shapes (producer-consumer, barrier phases, lock convoy,
//     quota-thrash) via their deterministic builders. A second target,
//     FuzzPipelineDifferential at the repository root, renders the same
//     byte programs to STD logs and cross-checks the pipelined against
//     the sequential ingestion path.
//   - Golden corpus: tracegen-produced STD logs under testdata/golden with
//     pinned verdict/violation-index snapshots, replayed end-to-end
//     through internal/rapidio — covering the parser-to-engine path —
//     both sequentially and through the pipelined checker.
//   - Concurrency differentials: the pipelined and parallel checkers are
//     pinned to sequential CheckSTD across the golden corpus, paper
//     traces and fuzz seeds, and a Monitor stress suite asserts exact
//     event accounting and at-most-once OnViolation delivery; CI runs all
//     of it under -race.
//   - Representation unit tests: internal/treeclock drives randomized
//     operation sequences (including the flat-interop and copy-on-write
//     snapshot paths) in lockstep against internal/vc; white-box tests in
//     internal/core pin the representation dynamics themselves (demotion
//     during chain bursts, hysteresis re-promotion, the Auto width
//     cutover).
//
// # Checking a trace
//
//	checker := aerodrome.NewChecker(aerodrome.Optimized)
//	for _, ev := range events {
//	    if v := checker.Event(ev); v != nil {
//	        fmt.Println("atomicity violation:", v)
//	        break
//	    }
//	}
//
// # Monitoring a live program
//
// The Monitor type offers a concurrency-safe front end for instrumenting
// running Go code: register threads, wrap atomic blocks in Begin/End, and
// report shared accesses; the monitor reports the first violation.
//
//	m := aerodrome.NewMonitor()
//	worker := m.Thread("worker-1")
//	worker.Begin()
//	worker.Read("balance")
//	worker.Write("balance")
//	worker.End()
package aerodrome
