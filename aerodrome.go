package aerodrome

import (
	"fmt"
	"io"

	"aerodrome/internal/core"
	"aerodrome/internal/doublechecker"
	"aerodrome/internal/rapidio"
	"aerodrome/internal/trace"
	"aerodrome/internal/velodrome"
)

// Algorithm selects a checking algorithm.
type Algorithm string

const (
	// Basic is AeroDrome Algorithm 1 (per-thread read clocks).
	Basic Algorithm = "basic"
	// ReadOpt is AeroDrome Algorithm 2 (O(V) read clocks).
	ReadOpt Algorithm = "readopt"
	// Optimized is AeroDrome Algorithm 3 (lazy updates, update sets,
	// transaction garbage collection) — the paper's evaluated configuration
	// and the recommended default.
	Optimized Algorithm = "optimized"
	// OptimizedTree is Optimized running on the tree-clock representation
	// (internal/treeclock): joins and copies touch only the entries that
	// actually change, which pays off at high thread counts.
	OptimizedTree Algorithm = "treeclock"
	// OptimizedHybrid is Optimized on the hybrid representation: tree
	// clocks for the per-thread clocks, flat clocks for the auxiliary
	// accumulators — the tree engine's win on thread-sharded workloads
	// without its chain-workload penalty.
	OptimizedHybrid Algorithm = "hybrid"
	// Auto is Optimized with the clock representation picked by observed
	// thread width: flat thread clocks below ~16 threads, tree clocks
	// above, re-evaluated as threads appear, with hysteresis re-promotion
	// for clocks that demoted during a churn phase. The choice is
	// semantically invisible — verdicts and violation indices are
	// identical to the other Optimized representations.
	Auto Algorithm = "auto"
	// Velodrome is the transaction-graph baseline with per-edge DFS cycle
	// checks.
	Velodrome Algorithm = "velodrome"
	// VelodromePK is Velodrome with a Pearce–Kelly dynamic topological
	// order instead of per-edge DFS (ablation).
	VelodromePK Algorithm = "velodrome-pk"
	// DoubleChecker is the two-phase coarse-then-precise analysis.
	DoubleChecker Algorithm = "doublechecker"
)

// Algorithms lists all supported algorithm names.
func Algorithms() []Algorithm {
	return []Algorithm{Basic, ReadOpt, Optimized, OptimizedTree, OptimizedHybrid, Auto, Velodrome, VelodromePK, DoubleChecker}
}

func newEngine(a Algorithm) (core.Engine, error) {
	switch a {
	case Basic:
		return core.NewBasic(), nil
	case ReadOpt:
		return core.NewReadOpt(), nil
	case Optimized, "":
		return core.NewOptimized(), nil
	case OptimizedTree:
		return core.NewOptimizedTree(), nil
	case OptimizedHybrid:
		return core.NewOptimizedHybrid(), nil
	case Auto:
		return core.NewOptimizedAuto(), nil
	case Velodrome:
		return velodrome.New(), nil
	case VelodromePK:
		return velodrome.New(velodrome.WithStrategy("pearce-kelly")), nil
	case DoubleChecker:
		return doublechecker.New(0), nil
	}
	return nil, fmt.Errorf("aerodrome: unknown algorithm %q", a)
}

// EventKind enumerates trace operations in the public API.
type EventKind uint8

const (
	// TxBegin is the start of an atomic block (the paper's ⊲).
	TxBegin EventKind = iota
	// TxEnd is the end of an atomic block (⊳).
	TxEnd
	// OpRead is a read of a shared variable.
	OpRead
	// OpWrite is a write of a shared variable.
	OpWrite
	// OpAcquire is a lock acquisition.
	OpAcquire
	// OpRelease is a lock release.
	OpRelease
	// OpFork is creation of another thread.
	OpFork
	// OpJoin waits for another thread to finish.
	OpJoin
)

var kindToInternal = map[EventKind]trace.OpKind{
	TxBegin: trace.Begin, TxEnd: trace.End,
	OpRead: trace.Read, OpWrite: trace.Write,
	OpAcquire: trace.Acquire, OpRelease: trace.Release,
	OpFork: trace.Fork, OpJoin: trace.Join,
}

// Event is a trace event in the public API. Thread, and Target where
// applicable, are dense non-negative integer IDs: Target names a variable
// for reads/writes, a lock for acquire/release, and a thread for fork/join.
type Event struct {
	Thread int
	Kind   EventKind
	Target int
}

// Violation reports a detected conflict-serializability (atomicity)
// violation. It implements error. The JSON field names are the wire
// format of the aerodromed service.
type Violation struct {
	// EventIndex is the 0-based position of the event at which the
	// violation was declared.
	EventIndex int64 `json:"event_index"`
	// Thread is the thread whose active transaction cannot be serialized.
	Thread int `json:"thread"`
	// Check names the algorithm rule that fired (e.g. "read-after-write").
	Check string `json:"check"`
	// Algorithm names the engine that reported.
	Algorithm string `json:"algorithm"`
	// Target, for a data-race violation (the hbrace analysis), is the
	// variable both racing accesses touch. Atomicity violations leave it
	// nil, so the legacy atomicity wire format is unchanged.
	Target *int `json:"target,omitempty"`
	// OtherThread, for a data-race violation, is the thread of the earlier
	// access of the racing pair (Thread is the later one). Nil for
	// atomicity violations.
	OtherThread *int `json:"other_thread,omitempty"`
}

// Error implements error.
func (v *Violation) Error() string {
	if v.Target != nil && v.OtherThread != nil {
		return fmt.Sprintf("%s: data race at event %d (%s on x%d, thread %d vs thread %d)",
			v.Algorithm, v.EventIndex, v.Check, *v.Target, v.Thread, *v.OtherThread)
	}
	return fmt.Sprintf("%s: conflict serializability violation at event %d (%s check, thread %d)",
		v.Algorithm, v.EventIndex, v.Check, v.Thread)
}

func fromInternal(v *core.Violation) *Violation {
	if v == nil {
		return nil
	}
	return &Violation{
		EventIndex: v.Index,
		Thread:     int(v.ActiveThread),
		Check:      v.Check.String(),
		Algorithm:  v.Algorithm,
	}
}

// Checker is a streaming conflict-serializability checker over explicit
// events. It is not safe for concurrent use; see Monitor for a synchronized
// front end.
type Checker struct {
	eng  core.Engine
	viol *Violation
}

// NewChecker returns a checker using the given algorithm (Optimized when
// empty). It panics on unknown algorithm names; use NewCheckerErr to
// validate user input.
func NewChecker(a Algorithm) *Checker {
	c, err := NewCheckerErr(a)
	if err != nil {
		panic(err)
	}
	return c
}

// NewCheckerErr is NewChecker with error reporting.
func NewCheckerErr(a Algorithm) (*Checker, error) {
	eng, err := newEngine(a)
	if err != nil {
		return nil, err
	}
	return &Checker{eng: eng}, nil
}

// Event feeds one event and returns the violation declared at it, if any.
// After the first violation the checker latches and keeps returning it.
func (c *Checker) Event(e Event) *Violation {
	kind, ok := kindToInternal[e.Kind]
	if !ok {
		return c.viol
	}
	v := c.eng.Process(trace.Event{
		Thread: trace.ThreadID(e.Thread),
		Kind:   kind,
		Target: int32(e.Target),
	})
	if v != nil && c.viol == nil {
		c.viol = fromInternal(v)
	}
	return c.viol
}

// Begin, End, Read, Write, Acquire, Release, Fork and Join are convenience
// wrappers over Event.
func (c *Checker) Begin(thread int) *Violation { return c.Event(Event{Thread: thread, Kind: TxBegin}) }

// End closes thread's innermost atomic block.
func (c *Checker) End(thread int) *Violation { return c.Event(Event{Thread: thread, Kind: TxEnd}) }

// Read reports a read of variable x by thread.
func (c *Checker) Read(thread, x int) *Violation {
	return c.Event(Event{Thread: thread, Kind: OpRead, Target: x})
}

// Write reports a write of variable x by thread.
func (c *Checker) Write(thread, x int) *Violation {
	return c.Event(Event{Thread: thread, Kind: OpWrite, Target: x})
}

// Acquire reports acquisition of lock l by thread.
func (c *Checker) Acquire(thread, l int) *Violation {
	return c.Event(Event{Thread: thread, Kind: OpAcquire, Target: l})
}

// Release reports release of lock l by thread.
func (c *Checker) Release(thread, l int) *Violation {
	return c.Event(Event{Thread: thread, Kind: OpRelease, Target: l})
}

// Fork reports that thread created child.
func (c *Checker) Fork(thread, child int) *Violation {
	return c.Event(Event{Thread: thread, Kind: OpFork, Target: child})
}

// Join reports that thread joined child.
func (c *Checker) Join(thread, child int) *Violation {
	return c.Event(Event{Thread: thread, Kind: OpJoin, Target: child})
}

// Violation returns the latched violation, if any.
func (c *Checker) Violation() *Violation { return c.viol }

// Processed returns the number of events consumed.
func (c *Checker) Processed() int64 { return c.eng.Processed() }

// Algorithm returns the name of the engine backing this checker (e.g.
// "aerodrome-optimized"), as it appears in Report.Algorithm.
func (c *Checker) Algorithm() string { return c.eng.Name() }

// Report is the outcome of checking a whole trace. The JSON field names
// are the wire format of the aerodromed service.
type Report struct {
	// Serializable is true iff no violation was found.
	Serializable bool `json:"serializable"`
	// Violation is non-nil iff not serializable.
	Violation *Violation `json:"violation,omitempty"`
	// Events is the number of events consumed (analysis stops at the first
	// violation, as in the paper).
	Events int64 `json:"events"`
	// Algorithm names the engine used.
	Algorithm string `json:"algorithm"`
	// Analyses carries per-analysis verdicts when the check ran a
	// non-default analysis set (see CheckSTDAnalyses); it is omitted — and
	// the report is byte-identical to the single-analysis wire format —
	// when only atomicity was requested. The atomicity entry, when
	// present, mirrors the top-level fields exactly.
	Analyses []AnalysisReport `json:"analyses,omitempty"`
}

// CheckSTD analyzes a trace log in the RAPID STD text format
// ("thread|op(target)|loc" lines) using the given algorithm.
func CheckSTD(r io.Reader, a Algorithm) (*Report, error) {
	eng, err := newEngine(a)
	if err != nil {
		return nil, err
	}
	rd := rapidio.NewReader(r)
	v, n := core.Run(eng, rd)
	if err := rd.Err(); err != nil {
		return nil, err
	}
	return &Report{
		Serializable: v == nil,
		Violation:    fromInternal(v),
		Events:       n,
		Algorithm:    eng.Name(),
	}, nil
}

// coreAlgorithm maps public algorithm names onto internal/core variants.
// Engines outside core (velodrome, velodrome-pk, doublechecker) have no
// parallel partition path and report ok=false.
func coreAlgorithm(a Algorithm) (core.Algorithm, bool) {
	switch a {
	case Basic:
		return core.AlgoBasic, true
	case ReadOpt:
		return core.AlgoReadOpt, true
	case Optimized, "":
		return core.AlgoOptimized, true
	case OptimizedTree:
		return core.AlgoOptimizedTree, true
	case OptimizedHybrid:
		return core.AlgoOptimizedHybrid, true
	case Auto:
		return core.AlgoOptimizedAuto, true
	}
	return 0, false
}

// CheckSTDParallelIntra analyzes one STD trace log on up to `workers`
// cores: the trace is partitioned into provably independent shards
// (disjoint variables, locks and fork/join structure, see
// internal/parcheck) and each shard is checked by its own engine in
// parallel. When the partition cannot be proven sound — a single
// connected component, or coordinator-thread clock flow crossing
// shards — the trace is checked sequentially instead, so the report is
// always byte-identical to CheckSTD: same verdict, same violation
// EventIndex, same event count, same algorithm name.
//
// Unlike CheckSTD, the trace is materialized in memory (the partition
// scan is a separate pass from checking). Algorithms without a core
// engine (Velodrome, VelodromePK, DoubleChecker) and workers <= 1 fall
// back to CheckSTD unchanged.
func CheckSTDParallelIntra(r io.Reader, a Algorithm, workers int) (*Report, error) {
	rep, _, err := CheckSTDParallelIntraStats(r, a, workers)
	return rep, err
}

// CheckEvents analyzes a slice of events.
func CheckEvents(events []Event, a Algorithm) (*Report, error) {
	eng, err := newEngine(a)
	if err != nil {
		return nil, err
	}
	var v *core.Violation
	var n int64
	for _, e := range events {
		kind, ok := kindToInternal[e.Kind]
		if !ok {
			return nil, fmt.Errorf("aerodrome: unknown event kind %d", e.Kind)
		}
		n++
		if v = eng.Process(trace.Event{
			Thread: trace.ThreadID(e.Thread), Kind: kind, Target: int32(e.Target),
		}); v != nil {
			break
		}
	}
	return &Report{
		Serializable: v == nil,
		Violation:    fromInternal(v),
		Events:       n,
		Algorithm:    eng.Name(),
	}, nil
}
