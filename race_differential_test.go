package aerodrome_test

// Lockdown suite for the multi-analysis surface: every trace in the golden
// corpus, the paper's ρ1–ρ4, the scenario shapes and the byte-program fuzz
// seeds is checked with the dual analysis set and pinned two ways. The
// hbrace verdict must match a naive happens-before oracle (full vector
// clocks, no epochs — internal/race.Naive) replaying the same events, and
// the atomicity verdict must be byte-identical — as JSON — to the
// single-analysis CheckSTD report, so adding a second analysis can never
// perturb the first. CI runs this under -race; FuzzRaceDifferential
// extends the oracle comparison to mutated byte programs.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"aerodrome"
	"aerodrome/internal/race"
	"aerodrome/internal/rapidio"
	"aerodrome/internal/testutil"
	"aerodrome/internal/trace"
)

var dualSet = []aerodrome.AnalysisKind{aerodrome.AnalysisAtomicity, aerodrome.AnalysisHBRace}

// naiveRaceVerdict replays the STD bytes through the naive HB oracle and
// returns its violation and processed-event count.
func naiveRaceVerdict(t *testing.T, std []byte) (*race.Violation, int64) {
	t.Helper()
	rd := rapidio.NewReader(bytes.NewReader(std))
	n := race.NewNaive()
	for {
		e, ok := rd.Next()
		if !ok {
			break
		}
		if n.Process(e) != nil {
			break
		}
	}
	if err := rd.Err(); err != nil {
		t.Fatalf("oracle parse: %v", err)
	}
	return n.Violation(), n.Processed()
}

// hbraceEntry extracts the hbrace AnalysisReport from a dual report.
func hbraceEntry(t *testing.T, ctx string, rep *aerodrome.Report) aerodrome.AnalysisReport {
	t.Helper()
	for _, ar := range rep.Analyses {
		if ar.Analysis == string(aerodrome.AnalysisHBRace) {
			return ar
		}
	}
	t.Fatalf("%s: no hbrace entry in %+v", ctx, rep.Analyses)
	return aerodrome.AnalysisReport{}
}

// requireOracleAgreement pins one hbrace verdict against the naive oracle:
// same race-or-not, and on a race the same event index, kind, variable and
// racing thread. (The reported other thread may legitimately differ when
// several prior accesses race the same event.)
func requireOracleAgreement(t *testing.T, ctx string, got aerodrome.AnalysisReport, ov *race.Violation, on int64) {
	t.Helper()
	if got.Clean != (ov == nil) {
		t.Fatalf("%s: hbrace clean=%v, oracle violation=%v", ctx, got.Clean, ov)
	}
	if got.Events != on {
		t.Fatalf("%s: hbrace consumed %d events, oracle %d", ctx, got.Events, on)
	}
	if ov == nil {
		return
	}
	v := got.Violation
	if v == nil || v.EventIndex != ov.Index || v.Check != ov.Check.String() ||
		v.Target == nil || *v.Target != int(ov.Var) || v.Thread != int(ov.Thread) {
		t.Fatalf("%s: hbrace violation %+v, oracle (idx %d, %s, x%d, t%d)",
			ctx, v, ov.Index, ov.Check, ov.Var, ov.Thread)
	}
}

// requireAtomicityByteIdentity marshals the single-analysis report and the
// dual report with its analyses stripped and requires identical JSON — the
// second analysis must not perturb the legacy wire format in any way,
// including field presence.
func requireAtomicityByteIdentity(t *testing.T, ctx string, single, dual *aerodrome.Report) {
	t.Helper()
	want, err := json.Marshal(single)
	if err != nil {
		t.Fatal(err)
	}
	stripped := *dual
	stripped.Analyses = nil
	got, err := json.Marshal(&stripped)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("%s: dual-analysis atomicity JSON diverged\n single: %s\n   dual: %s", ctx, want, got)
	}
}

// assertDualAnalysis checks one STD byte stream with the dual set through
// both the sequential and pipelined checkers and pins every guarantee the
// multi-analysis surface makes.
func assertDualAnalysis(t *testing.T, name string, std []byte) {
	t.Helper()
	single, err := aerodrome.CheckSTD(bytes.NewReader(std), aerodrome.Auto)
	if err != nil {
		t.Fatalf("%s: single: %v", name, err)
	}
	dual, err := aerodrome.CheckSTDAnalyses(bytes.NewReader(std), aerodrome.Auto, dualSet)
	if err != nil {
		t.Fatalf("%s: dual: %v", name, err)
	}
	piped, err := aerodrome.CheckReaderPipelinedAnalyses(bytes.NewReader(std), aerodrome.Auto, dualSet)
	if err != nil {
		t.Fatalf("%s: dual pipelined: %v", name, err)
	}

	// Atomicity must be untouched by the rider analysis, byte for byte.
	requireSameReport(t, name+" dual", single, dual)
	requireSameReport(t, name+" dual-pipelined", single, piped)
	requireAtomicityByteIdentity(t, name+" dual", single, dual)
	requireAtomicityByteIdentity(t, name+" dual-pipelined", single, piped)

	// The default set must remain literally the single-analysis path.
	def, err := aerodrome.CheckSTDAnalyses(bytes.NewReader(std), aerodrome.Auto, nil)
	if err != nil {
		t.Fatalf("%s: default-set: %v", name, err)
	}
	if len(def.Analyses) != 0 {
		t.Fatalf("%s: default-set report carries analyses: %+v", name, def.Analyses)
	}
	requireAtomicityByteIdentity(t, name+" default-set", single, def)

	// The hbrace verdict must match the naive oracle, on both paths.
	ov, on := naiveRaceVerdict(t, std)
	requireOracleAgreement(t, name+" dual", hbraceEntry(t, name, dual), ov, on)
	requireOracleAgreement(t, name+" dual-pipelined", hbraceEntry(t, name, piped), ov, on)
}

func TestRaceDifferentialOnGoldenCorpus(t *testing.T) {
	for _, path := range goldenPaths(t) {
		std, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		assertDualAnalysis(t, filepath.Base(path), std)
	}
}

func TestRaceDifferentialOnPaperAndShapeTraces(t *testing.T) {
	traces := []struct {
		name string
		tr   *trace.Trace
	}{
		{"rho1", testutil.Rho1()},
		{"rho2", testutil.Rho2()},
		{"rho3", testutil.Rho3()},
		{"rho4", testutil.Rho4()},
		{"phase-shift", testutil.PhaseShiftTrace(testutil.PhaseShiftOpts{
			Threads: 6, BurstRounds: 5, SteadyRounds: 25,
		})},
		{"prodcons", testutil.ProducerConsumerTrace(testutil.ProducerConsumerOpts{
			Producers: 3, Consumers: 2, Rounds: 50, Slots: 4,
		})},
		{"barrier", testutil.BarrierPhasesTrace(testutil.BarrierOpts{
			Threads: 6, Phases: 8, OpsPerTxn: 2,
		})},
		{"convoy", testutil.LockConvoyTrace(testutil.LockConvoyOpts{
			Threads: 6, Rounds: 40, Nested: true,
		})},
		{"thrash", testutil.QuotaThrashTrace(testutil.QuotaThrashOpts{
			Threads: 5, Bursts: 20, TxnsPerBurst: 3,
		})},
	}
	for _, tc := range traces {
		var std bytes.Buffer
		if err := rapidio.WriteTrace(&std, tc.tr); err != nil {
			t.Fatal(err)
		}
		assertDualAnalysis(t, tc.name, std.Bytes())
	}
}

func TestRaceDifferentialOnFuzzSeeds(t *testing.T) {
	for i, seed := range pipelineFuzzSeedTraces() {
		var std bytes.Buffer
		if err := rapidio.WriteTrace(&std, seed); err != nil {
			t.Fatal(err)
		}
		assertDualAnalysis(t, fmt.Sprintf("seed%d", i), std.Bytes())
	}
}

// FuzzRaceDifferential decodes fuzz bytes into a well-formed trace via the
// byte-program VM, renders it as an STD log, and requires the dual-analysis
// checker's hbrace verdict to match the naive happens-before oracle while
// its atomicity verdict stays byte-identical to the single-analysis path.
//
// Run long with:
//
//	go test -fuzz=FuzzRaceDifferential .
func FuzzRaceDifferential(f *testing.F) {
	for _, tr := range pipelineFuzzSeedTraces() {
		if enc := testutil.EncodeTrace(tr); enc != nil {
			f.Add(enc)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := testutil.TraceFromBytes(data)
		var std bytes.Buffer
		if err := rapidio.WriteTrace(&std, tr); err != nil {
			t.Fatal(err)
		}
		assertDualAnalysis(t, "fuzz", std.Bytes())
	})
}
