package aerodrome_test

import (
	"fmt"
	"strings"
	"testing"

	"aerodrome"
)

// statsLog builds a serializable STD log that exercises the epoch fast
// path: one writer seeds a shared variable, then reader transactions
// read it several times each — the repeats within a transaction check
// the same unchanged write clock and hit the epoch cache.
func statsLog(threads, rounds int) string {
	var b strings.Builder
	b.WriteString("t0|begin|0\nt0|w(x)|0\nt0|end|0\n")
	for r := 0; r < rounds; r++ {
		for t := 1; t <= threads; t++ {
			fmt.Fprintf(&b, "t%d|begin|0\n", t)
			for i := 0; i < 4; i++ {
				fmt.Fprintf(&b, "t%d|r(x)|0\n", t)
			}
			fmt.Fprintf(&b, "t%d|w(y%d)|0\n", t, t)
			fmt.Fprintf(&b, "t%d|end|0\n", t)
		}
	}
	return b.String()
}

// privateLog builds a perfectly partitionable STD log: every thread
// touches only its own variables.
func privateLog(threads, rounds int) string {
	var b strings.Builder
	for r := 0; r < rounds; r++ {
		for t := 1; t <= threads; t++ {
			fmt.Fprintf(&b, "t%d|begin|0\n", t)
			fmt.Fprintf(&b, "t%d|w(x%d)|0\n", t, t)
			fmt.Fprintf(&b, "t%d|r(x%d)|0\n", t, t)
			fmt.Fprintf(&b, "t%d|end|0\n", t)
		}
	}
	return b.String()
}

func TestCheckerStats(t *testing.T) {
	c := aerodrome.NewChecker(aerodrome.Optimized)
	c.Begin(0)
	c.Write(0, 0)
	c.End(0)
	for r := 0; r < 50; r++ {
		c.Begin(1)
		for i := 0; i < 4; i++ {
			c.Read(1, 0)
		}
		c.End(1)
	}
	s, ok := c.Stats()
	if !ok {
		t.Fatal("optimized checker must report stats")
	}
	if s.EpochHits == 0 {
		t.Fatalf("repeated same-thread accesses hit no epochs: %+v", s)
	}
	if rate := s.EpochHitRate(); rate <= 0 || rate > 1 {
		t.Fatalf("hit rate %v outside (0,1]", rate)
	}

	v := aerodrome.NewChecker(aerodrome.Velodrome)
	if _, ok := v.Stats(); ok {
		t.Fatal("velodrome has no engine stats to report")
	}
}

func TestIncrementalCheckerStats(t *testing.T) {
	c, err := aerodrome.NewIncrementalChecker(aerodrome.Optimized)
	if err != nil {
		t.Fatal(err)
	}
	log := statsLog(4, 100)
	for i := 0; i < len(log); i += 256 {
		end := i + 256
		if end > len(log) {
			end = len(log)
		}
		if _, err := c.Feed([]byte(log[i:end])); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Serializable {
		t.Fatalf("statsLog must be serializable: %+v", rep.Violation)
	}
	s, ok := c.Stats()
	if !ok || s.EpochHits == 0 {
		t.Fatalf("no engine stats after %d events: ok=%v %+v", rep.Events, ok, s)
	}
	parse, check := c.StageTimes()
	if parse <= 0 || check <= 0 {
		t.Fatalf("stage times not accumulated: parse=%v check=%v", parse, check)
	}
}

func TestMonitorStats(t *testing.T) {
	m := aerodrome.NewMonitor()
	w := m.Thread("writer")
	w.Begin()
	w.Write("x")
	w.End()
	rd := m.Thread("reader")
	for r := 0; r < 50; r++ {
		rd.Begin()
		for i := 0; i < 4; i++ {
			rd.Read("x")
		}
		rd.End()
	}
	s, ok := m.Stats()
	if !ok || s.EpochHits == 0 {
		t.Fatalf("monitor stats missing: ok=%v %+v", ok, s)
	}
}

func TestCheckReaderPipelinedStats(t *testing.T) {
	rep, cs, err := aerodrome.CheckReaderPipelinedStats(
		strings.NewReader(statsLog(4, 200)), aerodrome.Optimized)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Serializable {
		t.Fatalf("statsLog must be serializable: %+v", rep.Violation)
	}
	if !cs.HasEngineStats || cs.Engine.EpochHits == 0 {
		t.Fatalf("engine stats missing: %+v", cs)
	}
	if cs.ParseTime <= 0 || cs.CheckTime <= 0 {
		t.Fatalf("stage times not accumulated: %+v", cs)
	}
}

func TestCheckSTDParallelIntraStats(t *testing.T) {
	rep, ps, err := aerodrome.CheckSTDParallelIntraStats(
		strings.NewReader(privateLog(4, 50)), aerodrome.Optimized, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Serializable {
		t.Fatalf("privateLog must be serializable: %+v", rep.Violation)
	}
	// Fully thread-private variables partition perfectly.
	if ps.Shards < 2 || ps.Components < 2 || ps.Replayed {
		t.Fatalf("private-variable trace did not partition: %+v", ps)
	}
	// The sequential fallback still reports coherent stats.
	_, ps, err = aerodrome.CheckSTDParallelIntraStats(
		strings.NewReader(privateLog(4, 50)), aerodrome.Velodrome, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Shards != 1 || !ps.Replayed {
		t.Fatalf("velodrome fallback stats off: %+v", ps)
	}
}
