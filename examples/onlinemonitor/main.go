// Online monitor: attach AeroDrome to a *running* concurrent Go program.
//
// A tiny work-stealing job system executes "atomic" task handlers; the
// handlers report their shared-state accesses to an aerodrome.Monitor. One
// handler has a read-modify-write split across a lock release/reacquire —
// the monitor flags the violation while the program runs, demonstrating the
// online (single-pass, streaming) nature of the algorithm: no trace is
// stored anywhere.
//
//	go run ./examples/onlinemonitor
package main

import (
	"fmt"
	"sync"

	"aerodrome"
)

// counterService is shared state: a map of counters protected by one mutex.
type counterService struct {
	mu     sync.Mutex
	values map[string]int
}

// buggyIncrement releases the lock between the read and the write: each
// access is race-free, but the "increment" block is not atomic.
func (s *counterService) buggyIncrement(m aerodrome.Thread, key string) {
	m.Begin()
	defer m.End()

	s.mu.Lock()
	m.Acquire(&s.mu)
	m.Read(key)
	v := s.values[key]
	m.Release(&s.mu)
	s.mu.Unlock()

	// Window for interleaving: another goroutine can increment here, and
	// its update is lost.
	s.mu.Lock()
	m.Acquire(&s.mu)
	m.Write(key)
	s.values[key] = v + 1
	m.Release(&s.mu)
	s.mu.Unlock()
}

func main() {
	var violation *aerodrome.Violation
	var once sync.Once
	monitor := aerodrome.NewMonitor(
		aerodrome.WithAlgorithm(aerodrome.Optimized),
		aerodrome.OnViolation(func(v *aerodrome.Violation) {
			once.Do(func() { violation = v })
		}),
	)

	svc := &counterService{values: map[string]int{}}

	// A rendezvous that forces the racy interleaving deterministically:
	// worker A reads, then lets worker B run a full increment, then writes.
	aRead := make(chan struct{})
	bDone := make(chan struct{})

	main := monitor.Thread("main")
	var wg sync.WaitGroup
	wg.Add(2)

	aThread, _ := main.Fork("worker-A")
	go func() {
		defer wg.Done()
		m := aThread
		m.Begin()
		svc.mu.Lock()
		m.Acquire(&svc.mu)
		m.Read("hits")
		v := svc.values["hits"]
		m.Release(&svc.mu)
		svc.mu.Unlock()

		close(aRead) // let B run its whole increment in our window
		<-bDone

		svc.mu.Lock()
		m.Acquire(&svc.mu)
		m.Write("hits")
		svc.values["hits"] = v + 1
		m.Release(&svc.mu)
		svc.mu.Unlock()
		m.End()
	}()

	bThread, _ := main.Fork("worker-B")
	go func() {
		defer wg.Done()
		<-aRead
		svc.buggyIncrement(bThread, "hits")
		close(bDone)
	}()

	wg.Wait()
	fmt.Printf("final counter: hits=%d (two increments ran; one was lost)\n", svc.values["hits"])
	fmt.Printf("monitor observed %d events\n", monitor.Events())
	if violation == nil {
		violation = monitor.Violation()
	}
	if violation != nil {
		fmt.Printf("atomicity violation detected online: %v\n", violation)
	} else {
		fmt.Println("no violation detected (unexpected for this interleaving)")
	}
}
