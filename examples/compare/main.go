// Compare: race AeroDrome against Velodrome on the two workload families
// from the paper's evaluation — one where the transaction graph is retained
// (Velodrome degrades quadratically; Table 1's timeout rows) and one where
// garbage collection keeps it tiny (Velodrome keeps pace; Table 2).
//
//	go run ./examples/compare [-events 300000]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"aerodrome/internal/bench"
	"aerodrome/internal/workload"
)

func main() {
	events := flag.Int64("events", 300_000, "events per workload")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-engine timeout")
	flag.Parse()

	workloads := []workload.Config{
		{
			Name: "retained-graph (avrora-like)", Threads: 8, Vars: 5_000,
			Locks: 8, Events: *events, OpsPerTxn: 4,
			Pattern: workload.PatternHub, Inject: workload.ViolationCross,
			InjectAt: 0.9, AbsorbEvery: 8, Seed: 1,
		},
		{
			Name: "collected-graph (pmd-like)", Threads: 8, Vars: 5_000,
			Locks: 8, Events: *events, OpsPerTxn: 4,
			Pattern: workload.PatternChain, Inject: workload.ViolationCross,
			InjectAt: 0.9, Seed: 1,
		},
	}

	engines := []bench.EngineSpec{bench.Velodrome(), bench.AeroDrome()}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "workload\tengine\ttime\tevents\tverdict\n")
	for _, cfg := range workloads {
		var times []bench.Measurement
		for _, spec := range engines {
			m := bench.RunTimed(spec, workload.New(cfg), *timeout)
			times = append(times, m)
			verdict := "serializable"
			if m.Violation != nil {
				verdict = "VIOLATION"
			}
			if m.TimedOut {
				verdict = "timed out"
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%s\n", cfg.Name, m.Engine, m, m.Events, verdict)
		}
		if !times[0].TimedOut && !times[1].TimedOut {
			fmt.Fprintf(tw, "\tspeedup\t%.1fx\t\t\n",
				float64(times[0].Duration)/float64(times[1].Duration))
		} else if times[0].TimedOut {
			fmt.Fprintf(tw, "\tspeedup\t> %.0fx\t\t\n",
				float64(times[0].Duration)/float64(times[1].Duration))
		}
	}
	tw.Flush()
	fmt.Println("\nThe retained-graph workload reproduces the paper's Table 1 dynamics")
	fmt.Println("(Velodrome's per-edge cycle checks walk an ever-growing graph); the")
	fmt.Println("collected-graph workload reproduces Table 2 (GC keeps the graph tiny")
	fmt.Println("and the vector-clock overhead is visible).")
}
