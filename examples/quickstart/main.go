// Quickstart: build the paper's example trace ρ2 (Figure 2) through the
// public API and check it with AeroDrome.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"aerodrome"
)

func main() {
	// Trace ρ2 from the paper: two transactions with crossing write/read
	// pairs on variables x (0) and y (1). Threads are 0 (t1) and 1 (t2).
	events := []aerodrome.Event{
		{Thread: 0, Kind: aerodrome.TxBegin},
		{Thread: 1, Kind: aerodrome.TxBegin},
		{Thread: 0, Kind: aerodrome.OpWrite, Target: 0}, // t1: w(x)
		{Thread: 1, Kind: aerodrome.OpRead, Target: 0},  // t2: r(x)
		{Thread: 1, Kind: aerodrome.OpWrite, Target: 1}, // t2: w(y)
		{Thread: 0, Kind: aerodrome.OpRead, Target: 1},  // t1: r(y) ← violation
		{Thread: 0, Kind: aerodrome.TxEnd},
		{Thread: 1, Kind: aerodrome.TxEnd},
	}

	report, err := aerodrome.CheckEvents(events, aerodrome.Optimized)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(2)
	}
	fmt.Printf("algorithm: %s\n", report.Algorithm)
	fmt.Printf("events consumed: %d\n", report.Events)
	if report.Serializable {
		fmt.Println("trace is conflict serializable")
		return
	}
	fmt.Printf("atomicity violation: %v\n", report.Violation)

	// The same check, event by event, with the streaming Checker.
	checker := aerodrome.NewChecker(aerodrome.Optimized)
	for i, e := range events {
		if v := checker.Event(e); v != nil {
			fmt.Printf("streaming checker stops at event %d: %s check\n", i, v.Check)
			break
		}
	}
}
