// Quickstart for the aerodromed service: boot the server in-process on an
// ephemeral port, check a whole trace through POST /v1/check, then stream
// the same trace through an incremental session — the two deployment modes
// of the daemon. See the README in this directory for running the real
// daemon and driving it with the CLI and curl.
//
//	go run ./examples/server
package main

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"aerodrome/internal/server"
)

// rho2 is the paper's Figure 2 trace: two transactions whose write/read
// pairs cross on x and y — not conflict serializable.
const rho2 = `t1|begin|0
t2|begin|0
t1|w(x)|1
t2|r(x)|1
t2|w(y)|2
t1|r(y)|2
t1|end|0
t2|end|0
`

func main() {
	// Boot the daemon exactly as `aerodromed -addr 127.0.0.1:0` would.
	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- server.RunDaemon(ctx, server.DaemonConfig{
			Addr:            "127.0.0.1:0",
			ShutdownTimeout: 5 * time.Second,
			Ready:           ready,
			Log:             os.Stderr,
		})
	}()
	addr := <-ready
	client := &server.Client{BaseURL: "http://" + addr}

	// Mode 1: one-shot — stream the whole trace, get the report.
	report, err := client.Check(strings.NewReader(rho2), "")
	if err != nil {
		fmt.Fprintln(os.Stderr, "check:", err)
		os.Exit(1)
	}
	fmt.Printf("one-shot: algorithm=%s events=%d serializable=%v\n",
		report.Algorithm, report.Events, report.Serializable)
	if report.Violation != nil {
		fmt.Printf("one-shot: violation at event %d (%s check)\n",
			report.Violation.EventIndex, report.Violation.Check)
	}

	// Mode 2: incremental — open a session and feed the trace line by
	// line, as a live system under monitoring would.
	sess, err := client.NewSession("")
	if err != nil {
		fmt.Fprintln(os.Stderr, "session:", err)
		os.Exit(1)
	}
	for _, line := range strings.SplitAfter(rho2, "\n") {
		view, err := sess.Feed([]byte(line))
		if err != nil {
			fmt.Fprintln(os.Stderr, "feed:", err)
			os.Exit(1)
		}
		if view.Violation != nil {
			fmt.Printf("session: violation latched at event %d after %d events\n",
				view.Violation.EventIndex, view.Events)
			break
		}
	}
	if _, err := sess.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "close:", err)
		os.Exit(1)
	}

	// Health and metrics round out the operational surface.
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		fmt.Fprintln(os.Stderr, "metrics:", err)
		os.Exit(1)
	}
	resp.Body.Close()
	fmt.Printf("metrics: HTTP %d\n", resp.StatusCode)

	// SIGTERM-equivalent: cancel and wait for the graceful drain.
	stop()
	if err := <-done; err != nil {
		fmt.Fprintln(os.Stderr, "drain:", err)
		os.Exit(1)
	}
	fmt.Println("drained cleanly")
}
