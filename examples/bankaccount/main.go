// Bank account: the classic atomicity bug the paper's introduction
// motivates. A transfer method is *intended* to be atomic:
//
//	func transfer(from, to *Account, amount int) {   // @atomic
//	    if from.balance >= amount {                  // read
//	        from.balance -= amount                   // read+write
//	        to.balance += amount                     // read+write
//	    }
//	}
//
// Each individual access is protected by the account's lock, so the program
// is data-race free — yet two concurrent transfers interleave between the
// balance check and the withdrawal, and the transfer is not serializable.
// Race detectors stay silent here; a conflict-serializability checker does
// not.
//
// This example replays two interleaved transfer transactions through the
// public Checker API and shows AeroDrome catching the violation, then
// replays a corrected (two-phase-locked) version that passes.
//
//	go run ./examples/bankaccount
package main

import (
	"fmt"

	"aerodrome"
)

// Symbolic IDs for the trace.
const (
	alice = 0 // thread 0: transfer(checking → savings)
	bob   = 1 // thread 1: transfer(checking → credit)

	balChecking = 0 // variables
	balSavings  = 1
	balCredit   = 2

	lockChecking = 0 // locks
	lockSavings  = 1
	lockCredit   = 2
)

// brokenTransfers emits two racy transfers: each balance access is locked
// individually, so the check-then-act of each transaction interleaves with
// the other's withdrawal.
func brokenTransfers(c *aerodrome.Checker) *aerodrome.Violation {
	steps := []func() *aerodrome.Violation{
		func() *aerodrome.Violation { return c.Begin(alice) },
		func() *aerodrome.Violation { return c.Begin(bob) },

		// Both read the shared checking balance under the lock.
		func() *aerodrome.Violation { return c.Acquire(alice, lockChecking) },
		func() *aerodrome.Violation { return c.Read(alice, balChecking) },
		func() *aerodrome.Violation { return c.Release(alice, lockChecking) },

		func() *aerodrome.Violation { return c.Acquire(bob, lockChecking) },
		func() *aerodrome.Violation { return c.Read(bob, balChecking) },
		func() *aerodrome.Violation { return c.Release(bob, lockChecking) },

		// Alice withdraws (write after Bob's read: bob-txn → alice-txn).
		func() *aerodrome.Violation { return c.Acquire(alice, lockChecking) },
		func() *aerodrome.Violation { return c.Write(alice, balChecking) },
		func() *aerodrome.Violation { return c.Release(alice, lockChecking) },

		// Bob withdraws too (write after Alice's write: alice-txn → bob-txn
		// — the cycle closes here).
		func() *aerodrome.Violation { return c.Acquire(bob, lockChecking) },
		func() *aerodrome.Violation { return c.Write(bob, balChecking) },
		func() *aerodrome.Violation { return c.Release(bob, lockChecking) },

		func() *aerodrome.Violation { return c.Write(alice, balSavings) },
		func() *aerodrome.Violation { return c.Write(bob, balCredit) },
		func() *aerodrome.Violation { return c.End(alice) },
		func() *aerodrome.Violation { return c.End(bob) },
	}
	for _, step := range steps {
		if v := step(); v != nil {
			return v
		}
	}
	return nil
}

// fixedTransfers holds the checking lock for the whole critical section
// (two-phase locking): the transactions serialize and the trace is
// accepted.
func fixedTransfers(c *aerodrome.Checker) *aerodrome.Violation {
	transfer := func(who, dest, destLock int) *aerodrome.Violation {
		steps := []func() *aerodrome.Violation{
			func() *aerodrome.Violation { return c.Begin(who) },
			func() *aerodrome.Violation { return c.Acquire(who, lockChecking) },
			func() *aerodrome.Violation { return c.Read(who, balChecking) },
			func() *aerodrome.Violation { return c.Write(who, balChecking) },
			func() *aerodrome.Violation { return c.Acquire(who, destLock) },
			func() *aerodrome.Violation { return c.Write(who, dest) },
			func() *aerodrome.Violation { return c.Release(who, destLock) },
			func() *aerodrome.Violation { return c.Release(who, lockChecking) },
			func() *aerodrome.Violation { return c.End(who) },
		}
		for _, step := range steps {
			if v := step(); v != nil {
				return v
			}
		}
		return nil
	}
	if v := transfer(alice, balSavings, lockSavings); v != nil {
		return v
	}
	return transfer(bob, balCredit, lockCredit)
}

func main() {
	fmt.Println("— broken transfer (per-access locking) —")
	broken := aerodrome.NewChecker(aerodrome.Optimized)
	if v := brokenTransfers(broken); v != nil {
		fmt.Printf("caught: %v\n", v)
		fmt.Println("the two transfers cannot be serialized: each observed the")
		fmt.Println("checking balance before the other's withdrawal")
	} else {
		fmt.Println("unexpectedly serializable?!")
	}

	fmt.Println()
	fmt.Println("— fixed transfer (lock held across the critical section) —")
	fixed := aerodrome.NewChecker(aerodrome.Optimized)
	if v := fixedTransfers(fixed); v != nil {
		fmt.Printf("unexpected violation: %v\n", v)
	} else {
		fmt.Printf("accepted after %d events: transfers serialize cleanly\n", fixed.Processed())
	}
}
