package aerodrome_test

// Differential suite for the speculative intra-trace parallel checker:
// CheckSTDParallelIntra splits one trace across engines, so its whole
// correctness story is that no observable difference from CheckSTD
// exists — verdict, violation EventIndex/check/thread, event count and
// algorithm name all byte-identical, whichever way the partitioner went
// (parallel shards, conflict replay, or degenerate fallback). Every
// trace in the golden corpus, the paper's ρ1–ρ4, every shape builder
// and the byte-program fuzz seeds run through the comparison at several
// worker counts; CI runs this under -race and fuzzes the same property
// in FuzzParallelDifferential.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"aerodrome"
	"aerodrome/internal/rapidio"
	"aerodrome/internal/testutil"
	"aerodrome/internal/trace"
)

// parallelIntraWorkers are the shard counts the suite sweeps: the
// smallest parallel split, a realistic core count, and more workers
// than most traces have components.
var parallelIntraWorkers = []int{2, 4, 16}

// assertParallelIntraMatchesSequential checks one STD byte stream
// sequentially and with the intra-trace partitioner at every swept
// worker count.
func assertParallelIntraMatchesSequential(t *testing.T, name string, std []byte, a aerodrome.Algorithm) {
	t.Helper()
	seq, err := aerodrome.CheckSTD(bytes.NewReader(std), a)
	if err != nil {
		t.Fatalf("%s/%s: sequential: %v", name, a, err)
	}
	for _, workers := range parallelIntraWorkers {
		par, err := aerodrome.CheckSTDParallelIntra(bytes.NewReader(std), a, workers)
		if err != nil {
			t.Fatalf("%s/%s: parallel-intra(w=%d): %v", name, a, workers, err)
		}
		requireSameReport(t, fmt.Sprintf("%s/%s parallel-intra(w=%d)", name, a, workers), seq, par)
	}
}

func TestParallelIntraMatchesSequentialOnGoldenCorpus(t *testing.T) {
	for _, path := range goldenPaths(t) {
		std, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range pipelineAlgos {
			assertParallelIntraMatchesSequential(t, filepath.Base(path), std, a)
		}
	}
}

func TestParallelIntraMatchesSequentialOnPaperTraces(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   *trace.Trace
	}{
		{"rho1", testutil.Rho1()},
		{"rho2", testutil.Rho2()},
		{"rho3", testutil.Rho3()},
		{"rho4", testutil.Rho4()},
	} {
		var std bytes.Buffer
		if err := rapidio.WriteTrace(&std, tc.tr); err != nil {
			t.Fatal(err)
		}
		for _, a := range pipelineAlgos {
			assertParallelIntraMatchesSequential(t, tc.name, std.Bytes(), a)
		}
	}
}

// TestParallelIntraMatchesSequentialOnShapeBuilders sweeps every
// testutil shape builder — the structured traces whose fork/join and
// sharing topologies differ most (relay chains, barriers, lock convoys,
// thread-private shards).
func TestParallelIntraMatchesSequentialOnShapeBuilders(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   *trace.Trace
	}{
		{"phase-shift", testutil.PhaseShiftTrace(testutil.PhaseShiftOpts{
			Threads: 6, BurstRounds: 5, SteadyRounds: 25,
		})},
		{"prodcons", testutil.ProducerConsumerTrace(testutil.ProducerConsumerOpts{
			Producers: 3, Consumers: 2, Rounds: 50, Slots: 4,
		})},
		{"barrier", testutil.BarrierPhasesTrace(testutil.BarrierOpts{
			Threads: 6, Phases: 10, OpsPerTxn: 3,
		})},
		{"convoy", testutil.LockConvoyTrace(testutil.LockConvoyOpts{
			Threads: 6, Rounds: 50, Nested: true,
		})},
		{"thrash", testutil.QuotaThrashTrace(testutil.QuotaThrashOpts{
			Threads: 6, Bursts: 25, TxnsPerBurst: 3,
		})},
	} {
		var std bytes.Buffer
		if err := rapidio.WriteTrace(&std, tc.tr); err != nil {
			t.Fatal(err)
		}
		for _, a := range pipelineAlgos {
			assertParallelIntraMatchesSequential(t, tc.name, std.Bytes(), a)
		}
	}
}

// TestParallelIntraMatchesSequentialOnFuzzSeeds replays the
// byte-program fuzz seed set through the comparison.
func TestParallelIntraMatchesSequentialOnFuzzSeeds(t *testing.T) {
	for i, seed := range pipelineFuzzSeedTraces() {
		var std bytes.Buffer
		if err := rapidio.WriteTrace(&std, seed); err != nil {
			t.Fatal(err)
		}
		for _, a := range pipelineAlgos {
			assertParallelIntraMatchesSequential(t, fmt.Sprintf("seed%d", i), std.Bytes(), a)
		}
	}
}

// TestParallelIntraFallbacks pins the documented fallbacks: non-core
// algorithms and workers<=1 must behave exactly like CheckSTD,
// including unknown-algorithm errors.
func TestParallelIntraFallbacks(t *testing.T) {
	std, err := os.ReadFile(filepath.Join("testdata", "golden", "sharded-cross.std"))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []aerodrome.Algorithm{aerodrome.Velodrome, aerodrome.DoubleChecker} {
		seq, err := aerodrome.CheckSTD(bytes.NewReader(std), a)
		if err != nil {
			t.Fatal(err)
		}
		par, err := aerodrome.CheckSTDParallelIntra(bytes.NewReader(std), a, 4)
		if err != nil {
			t.Fatal(err)
		}
		requireSameReport(t, fmt.Sprintf("fallback %s", a), seq, par)
	}
	seq, err := aerodrome.CheckSTD(bytes.NewReader(std), aerodrome.Optimized)
	if err != nil {
		t.Fatal(err)
	}
	one, err := aerodrome.CheckSTDParallelIntra(bytes.NewReader(std), aerodrome.Optimized, 1)
	if err != nil {
		t.Fatal(err)
	}
	requireSameReport(t, "workers=1", seq, one)
	if _, err := aerodrome.CheckSTDParallelIntra(bytes.NewReader(std), "bogus", 4); err == nil {
		t.Fatal("unknown algorithm must error")
	}
	if _, err := aerodrome.CheckSTDParallelIntra(bytes.NewReader([]byte("not a trace\n")), aerodrome.Optimized, 4); err == nil {
		t.Fatal("parse error must surface")
	}
}

// FuzzParallelDifferential decodes fuzz bytes into a well-formed trace
// (via the byte-program VM), renders it as an STD log, and requires the
// intra-trace parallel checker to agree with the sequential checker at
// two shard counts. The mutation search hunts for fork/join topologies
// where the partitioner's relay-taint reasoning would go wrong.
//
// Run long with:
//
//	go test -fuzz=FuzzParallelDifferential .
func FuzzParallelDifferential(f *testing.F) {
	for _, tr := range pipelineFuzzSeedTraces() {
		if enc := testutil.EncodeTrace(tr); enc != nil {
			f.Add(enc)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := testutil.TraceFromBytes(data)
		var std bytes.Buffer
		if err := rapidio.WriteTrace(&std, tr); err != nil {
			t.Fatal(err)
		}
		for _, a := range []aerodrome.Algorithm{aerodrome.Optimized, aerodrome.Auto} {
			seq, err := aerodrome.CheckSTD(bytes.NewReader(std.Bytes()), a)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 7} {
				par, err := aerodrome.CheckSTDParallelIntra(bytes.NewReader(std.Bytes()), a, workers)
				if err != nil {
					t.Fatal(err)
				}
				requireSameReport(t, fmt.Sprintf("fuzz/%s w=%d", a, workers), seq, par)
			}
		}
	})
}
