module aerodrome

go 1.24
