package aerodrome_test

// Concurrency stress tests for Monitor, meant to run under -race: many
// goroutines hammer one monitor through the full operation surface
// (thread registration, begins/ends, reads/writes, lock ops), and the
// observable invariants are checked afterwards — exact event accounting,
// at-most-once OnViolation delivery, and agreement between the callback
// and Violation(). No such test existed before this suite; the monitor's
// single-mutex design makes it easy to believe and easy to regress.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"aerodrome"
)

// TestMonitorConcurrentStressSerializable: thread-private transactions
// under a shared lock discipline are conflict serializable regardless of
// interleaving, so the monitor must report no violation, deliver no
// callback, and count every event exactly once.
func TestMonitorConcurrentStressSerializable(t *testing.T) {
	const (
		goroutines = 16
		rounds     = 200
		opsPerTxn  = 4
	)
	var calls atomic.Int32
	m := aerodrome.NewMonitor(
		aerodrome.WithAlgorithm(aerodrome.Auto),
		aerodrome.OnViolation(func(*aerodrome.Violation) { calls.Add(1) }),
	)
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := m.Thread(g)
			var n int64
			for r := 0; r < rounds; r++ {
				th.Begin()
				th.Acquire("L")
				n += 2
				for i := 0; i < opsPerTxn; i++ {
					key := fmt.Sprintf("x%d_%d", g, i)
					if (r+i)%2 == 0 {
						th.Write(key)
					} else {
						th.Read(key)
					}
					n++
				}
				th.Release("L")
				th.End()
				n += 2
			}
			total.Add(n)
		}(g)
	}
	wg.Wait()
	if v := m.Violation(); v != nil {
		t.Fatalf("serializable workload reported violation: %v", v)
	}
	if got := calls.Load(); got != 0 {
		t.Fatalf("OnViolation called %d times on a serializable workload", got)
	}
	if got, want := m.Events(), total.Load(); got != want {
		t.Fatalf("event count %d, want %d", got, want)
	}
}

// TestMonitorViolationDeliveredAtMostOnce: goroutines race conflicting
// cross-transaction accesses (which may or may not close a cycle,
// depending on the schedule), then a deterministic ρ2-shaped coda forces a
// violation if none occurred. Across every schedule the callback must fire
// exactly once, agree with Violation(), and latch.
func TestMonitorViolationDeliveredAtMostOnce(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		var calls atomic.Int32
		var seen atomic.Pointer[aerodrome.Violation]
		m := aerodrome.NewMonitor(aerodrome.OnViolation(func(v *aerodrome.Violation) {
			calls.Add(1)
			seen.Store(v)
		}))
		const goroutines = 8
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				th := m.Thread(g)
				for r := 0; r < 50; r++ {
					th.Begin()
					th.Write(fmt.Sprintf("shared%d", r%4))
					th.Read(fmt.Sprintf("shared%d", (r+1)%4))
					th.End()
				}
			}(g)
		}
		wg.Wait()
		if m.Violation() == nil {
			// Deterministic coda: a guaranteed ρ2 cross on fresh variables.
			ta, tb := m.Thread("coda-a"), m.Thread("coda-b")
			ta.Begin()
			ta.Write("coda-x")
			tb.Begin()
			tb.Read("coda-x")
			tb.Write("coda-y")
			ta.Read("coda-y")
			ta.End()
			tb.End()
		}
		if m.Violation() == nil {
			t.Fatalf("iter %d: no violation after forced cross", iter)
		}
		if got := calls.Load(); got != 1 {
			t.Fatalf("iter %d: OnViolation called %d times, want exactly 1", iter, got)
		}
		if seen.Load() != m.Violation() {
			t.Fatalf("iter %d: callback saw %v, Violation() is %v", iter, seen.Load(), m.Violation())
		}
		// Latched: further events keep returning the same violation and
		// never re-fire the callback.
		th := m.Thread("after")
		if v := th.Write("z"); v != m.Violation() {
			t.Fatalf("iter %d: post-violation event returned %v", iter, v)
		}
		if got := calls.Load(); got != 1 {
			t.Fatalf("iter %d: callback re-fired (%d calls)", iter, got)
		}
	}
}
