package aerodrome

import (
	"sync"

	"aerodrome/internal/core"
	"aerodrome/internal/trace"
)

// Monitor is a concurrency-safe front end for checking atomicity of a live
// Go program: goroutines register as threads, wrap intended-atomic regions
// in Begin/End, and report shared-variable and lock operations. Symbols are
// interned from arbitrary comparable keys (strings, pointers, …).
//
// All operations funnel through one mutex — the analysis itself is a
// sequential single-pass algorithm, exactly like the paper's trace
// analysis. The serialization order of the monitor defines the observed
// trace.
type Monitor struct {
	mu      sync.Mutex
	eng     core.Engine
	set     []AnalysisKind
	extras  []analysisSink
	threads map[any]trace.ThreadID
	vars    map[any]trace.VarID
	locks   map[any]trace.LockID
	viol    *Violation
	onViol  func(*Violation)
	events  int64
}

// MonitorOption configures a Monitor.
type MonitorOption func(*Monitor) error

// WithAlgorithm selects the checking algorithm (default Optimized).
func WithAlgorithm(a Algorithm) MonitorOption {
	return func(m *Monitor) error {
		eng, err := newEngine(a)
		if err != nil {
			return err
		}
		m.eng = eng
		return nil
	}
}

// WithAnalyses selects the analysis set the monitor runs over the observed
// event stream (default atomicity only). Every analysis sees the same
// serialized trace and latches at its own first violation; the legacy
// Violation/Events/Snapshot surface always reports the atomicity analysis,
// while Analyses exposes the per-analysis verdicts.
func WithAnalyses(analyses ...AnalysisKind) MonitorOption {
	return func(m *Monitor) error {
		set, err := NormalizeAnalyses(analyses)
		if err != nil {
			return err
		}
		m.set = set
		m.extras = newAnalysisSinks(set)
		return nil
	}
}

// OnViolation installs a callback invoked (once, under the monitor lock)
// when the first violation is detected.
func OnViolation(f func(*Violation)) MonitorOption {
	return func(m *Monitor) error {
		m.onViol = f
		return nil
	}
}

// NewMonitor returns a Monitor with the given options. It panics only on
// programmer error (unknown algorithm name).
func NewMonitor(opts ...MonitorOption) *Monitor {
	m := &Monitor{
		eng:     core.NewOptimized(),
		set:     []AnalysisKind{AnalysisAtomicity},
		threads: map[any]trace.ThreadID{},
		vars:    map[any]trace.VarID{},
		locks:   map[any]trace.LockID{},
	}
	for _, o := range opts {
		if err := o(m); err != nil {
			panic(err)
		}
	}
	return m
}

// Thread registers (or looks up) a thread handle for the given key.
func (m *Monitor) Thread(key any) Thread {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Thread{m: m, id: m.internThread(key)}
}

func (m *Monitor) internThread(key any) trace.ThreadID {
	if id, ok := m.threads[key]; ok {
		return id
	}
	id := trace.ThreadID(len(m.threads))
	m.threads[key] = id
	return id
}

func (m *Monitor) internVar(key any) trace.VarID {
	if id, ok := m.vars[key]; ok {
		return id
	}
	id := trace.VarID(len(m.vars))
	m.vars[key] = id
	return id
}

func (m *Monitor) internLock(key any) trace.LockID {
	if id, ok := m.locks[key]; ok {
		return id
	}
	id := trace.LockID(len(m.locks))
	m.locks[key] = id
	return id
}

// Violation returns the first detected violation, if any.
func (m *Monitor) Violation() *Violation {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.viol
}

// Events returns the number of events observed so far.
func (m *Monitor) Events() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.events
}

// Snapshot returns the event count and the first violation in one
// consistent read — the introspection hook a serving front end polls
// between feeds (Events followed by Violation could straddle a concurrent
// event).
func (m *Monitor) Snapshot() (events int64, v *Violation) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.events, m.viol
}

// Algorithm returns the name of the engine backing this monitor, as it
// appears in Report.Algorithm.
func (m *Monitor) Algorithm() string {
	return m.eng.Name()
}

// AnalysisSet returns the monitor's effective analysis set.
func (m *Monitor) AnalysisSet() []AnalysisKind {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]AnalysisKind, len(m.set))
	copy(out, m.set)
	return out
}

// Analyses returns a consistent per-analysis snapshot: each analysis'
// verdict so far and the events it has consumed. The atomicity entry
// matches Snapshot exactly. With the default analysis set this returns
// the single atomicity entry.
func (m *Monitor) Analyses() []AnalysisReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	return analysisReports(m.set, m.extras, func() AnalysisReport {
		return AnalysisReport{
			Analysis:  string(AnalysisAtomicity),
			Clean:     m.viol == nil,
			Violation: m.viol,
			Events:    m.events,
			Algorithm: m.eng.Name(),
		}
	})
}

// Event feeds one explicit event, the hook for front ends that receive an
// already-encoded stream (a network session, a decoded trace log) rather
// than instrumenting live code. Identities are interned per key exactly
// like the handle-based API — the Event's integer Thread/Target are keys,
// not raw engine IDs, so an int key and a string key used elsewhere on the
// same monitor never collide, and fork/join targets intern as threads.
// Unknown kinds are ignored, mirroring Checker.Event.
func (m *Monitor) Event(e Event) *Violation {
	kind, ok := kindToInternal[e.Kind]
	if !ok {
		return m.Violation()
	}
	m.mu.Lock()
	t := m.internThread(e.Thread)
	var target int32
	switch e.Kind {
	case OpRead, OpWrite:
		target = int32(m.internVar(e.Target))
	case OpAcquire, OpRelease:
		target = int32(m.internLock(e.Target))
	case OpFork, OpJoin:
		target = int32(m.internThread(e.Target))
	}
	m.mu.Unlock()
	return m.process(trace.Event{Thread: t, Kind: kind, Target: target})
}

func (m *Monitor) process(e trace.Event) *Violation {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.viol != nil && sinksDone(m.extras) {
		return m.viol
	}
	if m.viol == nil {
		m.events++
		if v := m.eng.Process(e); v != nil {
			m.viol = fromInternal(v)
			if m.onViol != nil {
				m.onViol(m.viol)
			}
		}
	}
	for _, s := range m.extras {
		if !s.Done() {
			s.Process(e)
		}
	}
	return m.viol
}

// Thread is a per-thread handle on a Monitor. Handles are small values and
// may be copied freely; each method is safe for concurrent use with any
// other monitor operation.
type Thread struct {
	m  *Monitor
	id trace.ThreadID
}

// Begin enters an atomic block (blocks nest; only the outermost counts).
func (t Thread) Begin() *Violation {
	return t.m.process(trace.Event{Thread: t.id, Kind: trace.Begin})
}

// End leaves the innermost atomic block.
func (t Thread) End() *Violation {
	return t.m.process(trace.Event{Thread: t.id, Kind: trace.End})
}

// Read reports a read of the shared variable identified by key.
func (t Thread) Read(key any) *Violation {
	t.m.mu.Lock()
	x := t.m.internVar(key)
	t.m.mu.Unlock()
	return t.m.process(trace.Event{Thread: t.id, Kind: trace.Read, Target: int32(x)})
}

// Write reports a write of the shared variable identified by key.
func (t Thread) Write(key any) *Violation {
	t.m.mu.Lock()
	x := t.m.internVar(key)
	t.m.mu.Unlock()
	return t.m.process(trace.Event{Thread: t.id, Kind: trace.Write, Target: int32(x)})
}

// Acquire reports acquisition of the lock identified by key.
func (t Thread) Acquire(key any) *Violation {
	t.m.mu.Lock()
	l := t.m.internLock(key)
	t.m.mu.Unlock()
	return t.m.process(trace.Event{Thread: t.id, Kind: trace.Acquire, Target: int32(l)})
}

// Release reports release of the lock identified by key.
func (t Thread) Release(key any) *Violation {
	t.m.mu.Lock()
	l := t.m.internLock(key)
	t.m.mu.Unlock()
	return t.m.process(trace.Event{Thread: t.id, Kind: trace.Release, Target: int32(l)})
}

// Fork reports creation of the child thread and returns its handle. The
// fork event must precede any event of the child.
func (t Thread) Fork(childKey any) (Thread, *Violation) {
	t.m.mu.Lock()
	child := t.m.internThread(childKey)
	t.m.mu.Unlock()
	v := t.m.process(trace.Event{Thread: t.id, Kind: trace.Fork, Target: int32(child)})
	return Thread{m: t.m, id: child}, v
}

// Join reports that t waited for child to finish; the child must perform no
// further events.
func (t Thread) Join(child Thread) *Violation {
	return t.m.process(trace.Event{Thread: t.id, Kind: trace.Join, Target: int32(child.id)})
}
