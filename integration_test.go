package aerodrome_test

// End-to-end integration tests: generate workloads, round-trip them through
// the on-disk trace formats, and check them with every algorithm through
// the public API, asserting cross-checker agreement on files rather than
// in-memory streams.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"aerodrome"
	"aerodrome/internal/core"
	"aerodrome/internal/rapidio"
	"aerodrome/internal/trace"
	"aerodrome/internal/workload"
)

func generateToFile(t *testing.T, cfg workload.Config, dir string) string {
	t.Helper()
	path := filepath.Join(dir, cfg.Name+".std")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := rapidio.WriteSource(f, workload.New(cfg)); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPipelineGenerateCheckAgree(t *testing.T) {
	dir := t.TempDir()
	configs := []workload.Config{
		{
			Name: "violating-hub", Threads: 6, Vars: 300, Locks: 4,
			Events: 8_000, Pattern: workload.PatternHub,
			Inject: workload.ViolationCross, InjectAt: 0.8, AbsorbEvery: 8, Seed: 3,
		},
		{
			Name: "clean-chain", Threads: 5, Vars: 300, Locks: 4,
			Events: 8_000, Pattern: workload.PatternChain,
			Inject: workload.ViolationNone, Seed: 4,
		},
		{
			Name: "delayed-sharded", Threads: 6, Vars: 300, Locks: 2,
			Events: 8_000, Pattern: workload.PatternSharded, TxnFraction: 0.3,
			Inject: workload.ViolationDelayed, InjectAt: 0.5, Seed: 5,
		},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			path := generateToFile(t, cfg, dir)
			wantViolation := cfg.Inject != workload.ViolationNone
			for _, algo := range aerodrome.Algorithms() {
				f, err := os.Open(path)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := aerodrome.CheckSTD(f, algo)
				f.Close()
				if err != nil {
					t.Fatalf("%s: %v", algo, err)
				}
				if rep.Serializable == wantViolation {
					t.Fatalf("%s on %s: serializable=%v, want violation=%v",
						algo, cfg.Name, rep.Serializable, wantViolation)
				}
			}
		})
	}
}

func TestPipelineBinarySTDEquivalence(t *testing.T) {
	// The binary and text serializations of the same workload must produce
	// identical verdicts and detection indices.
	cfg := workload.Config{
		Name: "fmt-equiv", Threads: 6, Vars: 200, Locks: 3,
		Events: 6_000, Pattern: workload.PatternChain,
		Inject: workload.ViolationLock, InjectAt: 0.7, Seed: 8,
	}
	var stdBuf, binBuf bytes.Buffer
	if _, err := rapidio.WriteSource(&stdBuf, workload.New(cfg)); err != nil {
		t.Fatal(err)
	}
	bw := rapidio.NewBinaryWriter(&binBuf)
	gen := workload.New(cfg)
	for {
		e, ok := gen.Next()
		if !ok {
			break
		}
		if err := bw.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}

	stdEng := core.NewOptimized()
	vStd, nStd := core.Run(stdEng, rapidio.NewReader(&stdBuf))
	binEng := core.NewOptimized()
	vBin, nBin := core.Run(binEng, rapidio.NewBinaryReader(&binBuf))

	if (vStd == nil) != (vBin == nil) || nStd != nBin {
		t.Fatalf("format divergence: std=(%v,%d) bin=(%v,%d)", vStd, nStd, vBin, nBin)
	}
	if vStd != nil && vStd.Index != vBin.Index {
		t.Fatalf("violation index differs: %d vs %d", vStd.Index, vBin.Index)
	}
}

func TestPipelineStatsMatchTraceFile(t *testing.T) {
	cfg := workload.Config{
		Name: "stats", Threads: 4, Vars: 100, Locks: 2, Events: 5_000,
		Pattern: workload.PatternChain, Inject: workload.ViolationNone, Seed: 6,
	}
	dir := t.TempDir()
	path := generateToFile(t, cfg, dir)

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fromFile := trace.ComputeStats(rapidio.NewReader(f))
	fromGen := trace.ComputeStats(workload.New(cfg))
	// Reading interns variable names densely by first appearance, while the
	// generator's ID space may be sparse (IDs it never touched), so the Vars
	// column legitimately shrinks; everything else must match exactly.
	if fromFile.Vars > fromGen.Vars || fromFile.Vars == 0 {
		t.Fatalf("vars: file %d, gen %d", fromFile.Vars, fromGen.Vars)
	}
	fromFile.Vars = 0
	fromGen.Vars = 0
	if fromFile != fromGen {
		t.Fatalf("stats diverge:\nfile: %+v\ngen:  %+v", fromFile, fromGen)
	}
	if fromFile.Events == 0 || fromFile.Transactions == 0 {
		t.Fatalf("degenerate stats: %+v", fromFile)
	}
}

func TestPipelineDetectionIndicesOrdered(t *testing.T) {
	// On a violating file, the documented detection-point ordering must
	// hold across algorithms reading the same file.
	cfg := workload.Config{
		Name: "ordering", Threads: 6, Vars: 200, Locks: 3,
		Events: 6_000, Pattern: workload.PatternChain,
		Inject: workload.ViolationCross, InjectAt: 0.6, Seed: 9,
	}
	dir := t.TempDir()
	path := generateToFile(t, cfg, dir)

	index := func(algo aerodrome.Algorithm) int64 {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		rep, err := aerodrome.CheckSTD(f, algo)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Violation == nil {
			t.Fatalf("%s: expected violation", algo)
		}
		return rep.Violation.EventIndex
	}

	basic := index(aerodrome.Basic)
	readopt := index(aerodrome.ReadOpt)
	optimized := index(aerodrome.Optimized)
	velo := index(aerodrome.Velodrome)

	if basic != readopt {
		t.Fatalf("basic %d != readopt %d", basic, readopt)
	}
	if optimized > basic || velo > optimized {
		t.Fatalf("ordering broken: velo %d ≤ opt %d ≤ basic %d expected", velo, optimized, basic)
	}
}
