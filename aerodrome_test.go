package aerodrome_test

import (
	"strings"
	"sync"
	"testing"

	"aerodrome"
)

// rho2 returns the paper's Figure 2 trace through the public API.
func rho2() []aerodrome.Event {
	return []aerodrome.Event{
		{Thread: 0, Kind: aerodrome.TxBegin},
		{Thread: 1, Kind: aerodrome.TxBegin},
		{Thread: 0, Kind: aerodrome.OpWrite, Target: 0},
		{Thread: 1, Kind: aerodrome.OpRead, Target: 0},
		{Thread: 1, Kind: aerodrome.OpWrite, Target: 1},
		{Thread: 0, Kind: aerodrome.OpRead, Target: 1},
		{Thread: 0, Kind: aerodrome.TxEnd},
		{Thread: 1, Kind: aerodrome.TxEnd},
	}
}

func rho1() []aerodrome.Event {
	return []aerodrome.Event{
		{Thread: 0, Kind: aerodrome.TxBegin},
		{Thread: 0, Kind: aerodrome.OpWrite, Target: 0},
		{Thread: 1, Kind: aerodrome.TxBegin},
		{Thread: 1, Kind: aerodrome.OpRead, Target: 0},
		{Thread: 1, Kind: aerodrome.TxEnd},
		{Thread: 2, Kind: aerodrome.TxBegin},
		{Thread: 2, Kind: aerodrome.OpWrite, Target: 1},
		{Thread: 2, Kind: aerodrome.TxEnd},
		{Thread: 0, Kind: aerodrome.OpRead, Target: 1},
		{Thread: 0, Kind: aerodrome.TxEnd},
	}
}

func TestCheckEventsAllAlgorithms(t *testing.T) {
	for _, algo := range aerodrome.Algorithms() {
		rep, err := aerodrome.CheckEvents(rho2(), algo)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if rep.Serializable || rep.Violation == nil {
			t.Errorf("%s: rho2 must violate", algo)
		}
		rep, err = aerodrome.CheckEvents(rho1(), algo)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !rep.Serializable || rep.Violation != nil {
			t.Errorf("%s: rho1 must be serializable", algo)
		}
		if rep.Events != int64(len(rho1())) {
			t.Errorf("%s: consumed %d events, want %d", algo, rep.Events, len(rho1()))
		}
	}
}

func TestCheckerConvenienceMethods(t *testing.T) {
	c := aerodrome.NewChecker(aerodrome.Basic)
	if v := c.Begin(0); v != nil {
		t.Fatal(v)
	}
	c.Begin(1)
	c.Write(0, 0)
	c.Read(1, 0)
	c.Write(1, 1)
	v := c.Read(0, 1)
	if v == nil {
		t.Fatalf("rho2 via methods must violate")
	}
	if v.EventIndex != 5 || v.Check != "read-after-write" || v.Thread != 0 {
		t.Fatalf("violation = %+v", v)
	}
	if c.Violation() != v {
		t.Fatalf("Violation() must return the latch")
	}
	if got := v.Error(); !strings.Contains(got, "event 5") {
		t.Fatalf("Error() = %q", got)
	}
	// Latched: further events return the same violation.
	if c.End(0) != v {
		t.Fatalf("latch broken")
	}
	if c.Processed() != 6 {
		t.Fatalf("Processed = %d", c.Processed())
	}
}

func TestForkJoinAcquireRelease(t *testing.T) {
	c := aerodrome.NewChecker(aerodrome.Optimized)
	c.Fork(0, 1)
	c.Begin(1)
	c.Acquire(1, 0)
	c.Write(1, 0)
	c.Release(1, 0)
	c.End(1)
	if v := c.Join(0, 1); v != nil {
		t.Fatalf("clean fork/join: %v", v)
	}
}

func TestNewCheckerErrUnknown(t *testing.T) {
	if _, err := aerodrome.NewCheckerErr("bogus"); err == nil {
		t.Fatalf("unknown algorithm must error")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("NewChecker must panic on unknown algorithm")
		}
	}()
	aerodrome.NewChecker("bogus")
}

func TestCheckEventsUnknownAlgorithm(t *testing.T) {
	if _, err := aerodrome.CheckEvents(rho1(), "bogus"); err == nil {
		t.Fatalf("unknown algorithm must error")
	}
	if _, err := aerodrome.CheckEvents([]aerodrome.Event{{Kind: 99}}, aerodrome.Basic); err == nil {
		t.Fatalf("unknown event kind must error")
	}
}

func TestCheckSTD(t *testing.T) {
	log := `t1|begin|0
t2|begin|0
t1|w(x)|0
t2|r(x)|0
t2|w(y)|0
t1|r(y)|0
t1|end|0
t2|end|0
`
	rep, err := aerodrome.CheckSTD(strings.NewReader(log), aerodrome.Optimized)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Serializable {
		t.Fatalf("STD rho2 must violate")
	}
	if _, err := aerodrome.CheckSTD(strings.NewReader("garbage"), aerodrome.Optimized); err == nil {
		t.Fatalf("malformed STD must error")
	}
	if _, err := aerodrome.CheckSTD(strings.NewReader(log), "bogus"); err == nil {
		t.Fatalf("unknown algorithm must error")
	}
}

func TestMonitorBasics(t *testing.T) {
	var cbViolation *aerodrome.Violation
	m := aerodrome.NewMonitor(
		aerodrome.WithAlgorithm(aerodrome.Optimized),
		aerodrome.OnViolation(func(v *aerodrome.Violation) { cbViolation = v }),
	)
	t1 := m.Thread("t1")
	t2 := m.Thread("t2")
	if m.Thread("t1") != t1 {
		t.Fatalf("thread handles must be stable")
	}

	t1.Begin()
	t2.Begin()
	t1.Write("x")
	t2.Read("x")
	t2.Write("y")
	v := t1.Read("y")
	if v == nil {
		t.Fatalf("monitor must catch rho2")
	}
	if cbViolation != v {
		t.Fatalf("callback must fire with the violation")
	}
	if m.Violation() != v {
		t.Fatalf("Violation() accessor broken")
	}
	if m.Events() != 6 {
		t.Fatalf("Events = %d, want 6", m.Events())
	}
}

func TestMonitorForkJoinLocks(t *testing.T) {
	m := aerodrome.NewMonitor()
	main := m.Thread("main")
	child, v := main.Fork("child")
	if v != nil {
		t.Fatal(v)
	}
	child.Begin()
	child.Acquire("mu")
	child.Write("shared")
	child.Release("mu")
	child.End()
	if v := main.Join(child); v != nil {
		t.Fatalf("clean monitor fork/join: %v", v)
	}
}

func TestMonitorConcurrentUse(t *testing.T) {
	// Hammer the monitor from several goroutines on disjoint state: no
	// violation, no race (run with -race in CI).
	m := aerodrome.NewMonitor()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := m.Thread(g)
			for i := 0; i < 200; i++ {
				th.Begin()
				th.Read(g * 1000)
				th.Write(g*1000 + i%7)
				th.End()
			}
		}(g)
	}
	wg.Wait()
	if v := m.Violation(); v != nil {
		t.Fatalf("disjoint state must not violate: %v", v)
	}
	if m.Events() != 8*200*4 {
		t.Fatalf("Events = %d", m.Events())
	}
}

func TestMonitorUnknownAlgorithmPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("unknown algorithm must panic")
		}
	}()
	aerodrome.NewMonitor(aerodrome.WithAlgorithm("bogus"))
}

func TestAlgorithmsList(t *testing.T) {
	got := aerodrome.Algorithms()
	if len(got) != 9 {
		t.Fatalf("Algorithms() = %v", got)
	}
	for _, a := range got {
		if _, err := aerodrome.NewCheckerErr(a); err != nil {
			t.Fatalf("listed algorithm %q must construct: %v", a, err)
		}
	}
}
