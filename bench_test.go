package aerodrome_test

// The benchmark harness: one benchmark family per paper table, one per
// worked figure, plus the ablations called out in DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// Each Table benchmark iteration analyzes one freshly generated trace of
// benchEvents events with the row's workload shape; the reported metric of
// interest is ns/op between the velodrome and aerodrome sub-benchmarks of
// the same row (the paper's columns 8 and 9). cmd/experiments runs the same
// workloads at full scale with timeouts and prints the paper-style tables.

import (
	"testing"

	"aerodrome/internal/bench"
	"aerodrome/internal/core"
	"aerodrome/internal/testutil"
	"aerodrome/internal/trace"
	"aerodrome/internal/velodrome"
	"aerodrome/internal/workload"
)

// benchEvents keeps a full `go test -bench=.` run tractable; the hub rows
// are quadratic for Velodrome, which is exactly the effect under study.
const benchEvents = 20_000

// benchVars bounds the variable pools at benchmark scale.
const benchVars = 2_000

func benchRow(b *testing.B, row workload.PaperRow) {
	b.Helper()
	engines := []bench.EngineSpec{bench.Velodrome(), bench.AeroDrome()}
	for _, spec := range engines {
		b.Run(spec.Label, func(b *testing.B) {
			var events int64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng := spec.New()
				v, n := core.Run(eng, workload.New(row.Config))
				events += n
				if (v != nil) == row.PaperAtomic {
					b.Fatalf("%s on %s: verdict flipped (violation=%v)",
						spec.Label, row.Config.Name, v != nil)
				}
			}
			b.ReportMetric(float64(events)/float64(b.N), "events/op")
		})
	}
}

// BenchmarkTable1 regenerates the paper's Table 1 rows (atomicity
// specifications from DoubleChecker) at benchmark scale.
func BenchmarkTable1(b *testing.B) {
	for _, row := range workload.Table1(benchEvents, benchVars) {
		row := row
		b.Run(row.Config.Name, func(b *testing.B) { benchRow(b, row) })
	}
}

// BenchmarkTable2 regenerates the paper's Table 2 rows (naïve atomicity
// specifications).
func BenchmarkTable2(b *testing.B) {
	for _, row := range workload.Table2(benchEvents, benchVars) {
		row := row
		b.Run(row.Config.Name, func(b *testing.B) { benchRow(b, row) })
	}
}

// BenchmarkFigureTraces replays the paper's worked example traces ρ1–ρ4
// (Figures 1–4, whose AeroDrome runs are Figures 5–7) through Algorithm 1.
func BenchmarkFigureTraces(b *testing.B) {
	traces := map[string]*trace.Trace{
		"rho1": testutil.Rho1(),
		"rho2": testutil.Rho2(),
		"rho3": testutil.Rho3(),
		"rho4": testutil.Rho4(),
	}
	for name, tr := range traces {
		tr := tr
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng := core.NewBasic()
				core.Run(eng, tr.Cursor())
			}
		})
	}
}

// BenchmarkAblationEngines compares the three AeroDrome variants of
// Algorithm 1/2/3 on a GC-friendly chain workload (DESIGN.md E-A1): the
// payoff of the read-clock reduction and the lazy/update-set/GC
// optimizations.
func BenchmarkAblationEngines(b *testing.B) {
	cfg := workload.Config{
		Name: "ablation-chain", Threads: 8, Vars: benchVars, Locks: 8,
		Events: benchEvents, OpsPerTxn: 4, Pattern: workload.PatternChain,
		Inject: workload.ViolationNone, Seed: 42,
	}
	for _, algo := range []core.Algorithm{core.AlgoBasic, core.AlgoReadOpt, core.AlgoOptimized} {
		algo := algo
		b.Run(algo.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng := core.New(algo)
				if v, _ := core.Run(eng, workload.New(cfg)); v != nil {
					b.Fatalf("unexpected violation: %v", v)
				}
			}
		})
	}
}

// BenchmarkAblationCycleDetection compares Velodrome's per-edge DFS against
// the Pearce–Kelly dynamic topological order (DESIGN.md E-A2) on the
// retention workload where cycle checks dominate.
func BenchmarkAblationCycleDetection(b *testing.B) {
	cfg := workload.Config{
		Name: "ablation-hub", Threads: 8, Vars: benchVars, Locks: 8,
		Events: benchEvents, OpsPerTxn: 4, Pattern: workload.PatternHub,
		Inject: workload.ViolationNone, AbsorbEvery: 8, Seed: 42,
	}
	for _, strategy := range []string{"dfs", "pearce-kelly"} {
		strategy := strategy
		b.Run(strategy, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng := velodrome.New(velodrome.WithStrategy(strategy))
				if v, _ := core.Run(eng, workload.New(cfg)); v != nil {
					b.Fatalf("unexpected violation: %v", v)
				}
			}
		})
	}
}

// BenchmarkAblationGC measures the effect of AeroDrome's transaction
// garbage collection (the hasIncomingEdge fast path) by comparing a
// workload of foreign-free transactions (all ends take the GC path) with a
// tainted chain (all ends take the full propagation path).
func BenchmarkAblationGC(b *testing.B) {
	private := workload.Config{
		Name: "gc-private", Threads: 8, Vars: benchVars, Locks: 1,
		Events: benchEvents, OpsPerTxn: 4, Pattern: workload.PatternSharded,
		TxnFraction: 1, Inject: workload.ViolationNone, Seed: 42,
	}
	tainted := workload.Config{
		Name: "gc-tainted", Threads: 8, Vars: benchVars, Locks: 1,
		Events: benchEvents, OpsPerTxn: 4, Pattern: workload.PatternChain,
		Inject: workload.ViolationNone, Seed: 42,
	}
	for _, cfg := range []workload.Config{private, tainted} {
		cfg := cfg
		b.Run(cfg.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng := core.NewOptimized()
				if v, _ := core.Run(eng, workload.New(cfg)); v != nil {
					b.Fatalf("unexpected violation: %v", v)
				}
			}
		})
	}
}

// BenchmarkThroughput reports steady-state events/sec for the evaluated
// AeroDrome configuration on the three body patterns.
func BenchmarkThroughput(b *testing.B) {
	for _, pattern := range []workload.Pattern{
		workload.PatternHub, workload.PatternChain, workload.PatternSharded,
	} {
		pattern := pattern
		b.Run(string(pattern), func(b *testing.B) {
			cfg := workload.Config{
				Name: "throughput", Threads: 8, Vars: benchVars, Locks: 8,
				Events: benchEvents, OpsPerTxn: 4, Pattern: pattern,
				TxnFraction: 0.5, Inject: workload.ViolationNone,
				AbsorbEvery: 8, Seed: 42,
			}
			b.ReportAllocs()
			var events int64
			for i := 0; i < b.N; i++ {
				eng := core.NewOptimized()
				_, n := core.Run(eng, workload.New(cfg))
				events += n
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkThreadScaling measures the Optimized engine's per-event cost as
// the thread count grows (T ∈ {8, 64, 256}) on both clock representations.
// This is the benchmark family behind BENCH_baseline.json/BENCH_after.json
// (cmd/experiments -run bench): per-event cost that is linear in thread
// count shows up as rows whose ns/event grow with T even though the trace
// shape is otherwise fixed.
func BenchmarkThreadScaling(b *testing.B) {
	for _, cfg := range bench.ThreadScalingConfigs(benchEvents) {
		cfg := cfg
		for _, spec := range []bench.EngineSpec{
			bench.AeroDromeVariant(core.AlgoOptimized),
			bench.AeroDromeTree(),
			bench.AeroDromeHybrid(),
		} {
			spec := spec
			b.Run(cfg.Name+"/"+spec.Label, func(b *testing.B) {
				b.ReportAllocs()
				var events int64
				for i := 0; i < b.N; i++ {
					eng := spec.New()
					v, n := core.Run(eng, workload.New(cfg))
					if v != nil {
						b.Fatalf("unexpected violation: %v", v)
					}
					events += n
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
			})
		}
	}
}
